package exp

import (
	"fmt"

	"aic/internal/ckpt"
	"aic/internal/delta"
	"aic/internal/memsim"
	"aic/internal/model"
	"aic/internal/stats"
	"aic/internal/workload"
)

// Fig2Point is one sample of the delta-dynamics study.
type Fig2Point struct {
	Time        float64 // checkpoint moment (seconds since the full checkpoint)
	Latency     float64 // absolute delta latency (s)
	Size        float64 // absolute delta size (bytes)
	NormLatency float64 // latency / mean latency over the window
	NormSize    float64 // size / mean size over the window
}

// Fig2Series is one benchmark's curve in Fig. 2.
type Fig2Series struct {
	Benchmark string
	Points    []Fig2Point
}

// Swing returns max/min of the normalized size — the magnitude of the
// benchmark's delta-size swings.
func (s Fig2Series) Swing() float64 {
	if len(s.Points) == 0 {
		return 1
	}
	lo, hi := s.Points[0].NormSize, s.Points[0].NormSize
	for _, p := range s.Points {
		if p.NormSize < lo {
			lo = p.NormSize
		}
		if p.NormSize > hi {
			hi = p.NormSize
		}
	}
	if lo <= 0 {
		return hi
	}
	return hi / lo
}

// Fig2 reproduces the motivating study: for each benchmark, take the first
// full checkpoint at t=0, then evaluate the page-aligned delta (latency and
// size) the second checkpoint would have if taken at each second of a
// 60-second window, normalized by the window means.
func Fig2(seed uint64, benchmarks ...string) ([]Fig2Series, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"sjeng", "lbm", "bzip2"}
	}
	sys := BenchSystem(1)
	var out []Fig2Series
	for _, name := range benchmarks {
		prog, err := workload.ByName(name, seed)
		if err != nil {
			return nil, err
		}
		as := memsim.New(0)
		builder := ckpt.NewBuilder(as.PageSize(), 0, 0)
		prog.Init(as)
		builder.FullCheckpoint(as)

		series := Fig2Series{Benchmark: name}
		const window = 60
		for t := 1; t <= window; t++ {
			prog.Step(as, float64(t-1), 1)
			// Hypothetical checkpoint now: delta every dirty page against
			// its version in the full checkpoint, without disturbing the
			// run.
			dirty := as.DirtyPages()
			updates := make([]delta.PageUpdate, 0, len(dirty))
			var oldBytes int
			for _, idx := range dirty {
				old := builder.PrevPage(idx)
				if old != nil {
					oldBytes += len(old)
				}
				updates = append(updates, delta.PageUpdate{Index: idx, Old: old, New: as.Page(idx)})
			}
			_, st := delta.EncodePageAlignedStats(updates, 0)
			dl := sys.CompressTime(int64(st.InputBytes+oldBytes), int64(st.OutputBytes))
			series.Points = append(series.Points, Fig2Point{
				Time:    float64(t),
				Latency: dl,
				Size:    float64(st.OutputBytes),
			})
		}
		var lats, sizes []float64
		for _, p := range series.Points {
			lats = append(lats, p.Latency)
			sizes = append(sizes, p.Size)
		}
		meanLat, meanSize := stats.Mean(lats), stats.Mean(sizes)
		for i := range series.Points {
			if meanLat > 0 {
				series.Points[i].NormLatency = series.Points[i].Latency / meanLat
			}
			if meanSize > 0 {
				series.Points[i].NormSize = series.Points[i].Size / meanSize
			}
		}
		out = append(out, series)
	}
	return out, nil
}

// ScalingRow is one system size of Figs. 5/6: NET² of the Moody baseline
// and the three concurrent configurations.
type ScalingRow struct {
	Size   float64
	Moody  float64
	L1L3   float64
	L2L3   float64
	L1L2L3 float64
}

// DefaultSizes are the system-size multipliers of Figs. 5/6.
func DefaultSizes() []float64 { return []float64{1, 2, 4, 10, 20} }

func scalingStudy(sizes []float64, scale func(model.Params, float64) model.Params) ([]ScalingRow, error) {
	base := model.Coastal()
	var rows []ScalingRow
	for _, s := range sizes {
		p := scale(base, s)
		row := ScalingRow{Size: s}
		m, err := model.OptimizeMoody(p, 10, 500000)
		if err != nil {
			return nil, fmt.Errorf("Moody at %gx: %w", s, err)
		}
		row.Moody = m.NET2
		for _, kind := range []model.ConcurrentKind{model.KindL1L3, model.KindL2L3, model.KindL1L2L3} {
			r, err := model.OptimizeConcurrent(kind, p, 10, 500000)
			if err != nil {
				return nil, fmt.Errorf("%v at %gx: %w", kind, s, err)
			}
			switch kind {
			case model.KindL1L3:
				row.L1L3 = r.NET2
			case model.KindL2L3:
				row.L2L3 = r.NET2
			case model.KindL1L2L3:
				row.L1L2L3 = r.NET2
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5 computes NET² of the pF3D MPI profile under system-size scaling
// (failure rates and c3 both grow with size).
func Fig5(sizes []float64) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes()
	}
	return scalingStudy(sizes, func(p model.Params, s float64) model.Params { return p.ScaleMPI(s) })
}

// Fig6 computes NET² for the RMS profile (failure rates flat, c3 grows).
func Fig6(sizes []float64) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes()
	}
	return scalingStudy(sizes, func(p model.Params, s float64) model.Params { return p.ScaleRMS(s) })
}

// SharingRow is one system size of Fig. 7: Moody's NET² and L2L3's NET²
// for each sharing factor.
type SharingRow struct {
	Size  float64
	Moody float64
	BySF  map[int]float64
}

// DefaultSharingFactors are the SF values studied in Fig. 7.
func DefaultSharingFactors() []int { return []int{1, 3, 7, 15} }

// Fig7 computes L2L3 NET² when SF computation processes share a single
// checkpointing core, against the Moody reference (which has no
// checkpointing core and is unaffected by SF), under RMS scaling.
func Fig7(sizes []float64, sfs []int) ([]SharingRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes()
	}
	if len(sfs) == 0 {
		sfs = DefaultSharingFactors()
	}
	base := model.Coastal()
	var rows []SharingRow
	for _, s := range sizes {
		p := base.ScaleRMS(s)
		row := SharingRow{Size: s, BySF: make(map[int]float64, len(sfs))}
		m, err := model.OptimizeMoody(p, 10, 500000)
		if err != nil {
			return nil, err
		}
		row.Moody = m.NET2
		for _, sf := range sfs {
			shared := p.ShareCheckpointCore(float64(sf))
			r, err := model.OptimizeConcurrent(model.KindL2L3, shared, 10, 500000)
			if err != nil {
				return nil, err
			}
			row.BySF[sf] = r.NET2
		}
		rows = append(rows, row)
	}
	return rows, nil
}
