package exp

import (
	"fmt"
	"strings"
	"time"

	"aic/internal/ckpt"
	"aic/internal/core"
	"aic/internal/delta"
	"aic/internal/memsim"
	"aic/internal/workload"
)

// CompressorAblationRow compares the three delta compressors under SIC for
// one benchmark (design decision 1/3 of DESIGN.md §5).
type CompressorAblationRow struct {
	Benchmark  string
	RatioPA    float64
	RatioWhole float64
	RatioXOR   float64
	NET2PA     float64
	NET2Whole  float64
	NET2XOR    float64
}

// AblationCompressor measures how the compressor choice moves both the
// compression ratio and the end-to-end NET².
func AblationCompressor(seed uint64, benchmarks ...string) ([]CompressorAblationRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = BenchmarkNames()
	}
	sys := BenchSystem(1)
	lambda := ExperimentLambda()
	var rows []CompressorAblationRow
	for _, name := range benchmarks {
		row := CompressorAblationRow{Benchmark: name}
		for _, comp := range []core.CompressorKind{core.CompressorPA, core.CompressorWhole, core.CompressorXOR} {
			res, err := runPolicy(name, core.PolicySIC, sys, lambda, seed, comp)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", name, comp, err)
			}
			n, err := res.NET2(lambda)
			if err != nil {
				return nil, err
			}
			switch comp {
			case core.CompressorPA:
				row.RatioPA, row.NET2PA = res.MeanRatio(), n
			case core.CompressorWhole:
				row.RatioWhole, row.NET2Whole = res.MeanRatio(), n
			case core.CompressorXOR:
				row.RatioXOR, row.NET2XOR = res.MeanRatio(), n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PredictorAblationRow compares the stepwise+NGD predictor against
// last-value prediction for AIC (design decision 4).
type PredictorAblationRow struct {
	Benchmark  string
	NET2Full   float64 // stepwise regression + normalized gradient descent
	NET2Naive  float64 // last measured value as the prediction
	Intervals  int
	IntervalsN int
}

// AblationPredictor runs AIC with and without the learned predictor.
func AblationPredictor(seed uint64, benchmarks ...string) ([]PredictorAblationRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"milc", "sjeng", "sphinx3"}
	}
	sys := BenchSystem(1)
	lambda := ExperimentLambda()
	var rows []PredictorAblationRow
	for _, name := range benchmarks {
		row := PredictorAblationRow{Benchmark: name}
		full, err := runPolicy(name, core.PolicyAIC, sys, lambda, seed, core.CompressorPA)
		if err != nil {
			return nil, err
		}
		if row.NET2Full, err = full.NET2(lambda); err != nil {
			return nil, err
		}
		row.Intervals = len(full.Intervals)

		prog, _ := workload.ByName(name, seed)
		naive, err := core.NewRuntime(prog, core.Config{
			Policy: core.PolicyAIC, System: sys, Lambda: lambda,
			NaivePredictor: true, Seed: seed,
		}).Run()
		if err != nil {
			return nil, err
		}
		if row.NET2Naive, err = naive.NET2(lambda); err != nil {
			return nil, err
		}
		row.IntervalsN = len(naive.Intervals)
		rows = append(rows, row)
	}
	return rows, nil
}

// SamplerAblationRow compares adaptive Tg against a pinned Tg (design
// decision 5). The point of adaptation is keeping the sample count high
// without overflowing the 8-MB buffer; a badly pinned Tg starves the
// JD/DI metrics.
type SamplerAblationRow struct {
	Benchmark     string
	NET2Adaptive  float64
	NET2FixedTiny float64 // Tg pinned far too small (buffer overflow, drops)
	NET2FixedHuge float64 // Tg pinned far too large (few samples)
}

// AblationSampler runs AIC under the three Tg policies.
func AblationSampler(seed uint64, benchmarks ...string) ([]SamplerAblationRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"sjeng", "milc"}
	}
	sys := BenchSystem(1)
	lambda := ExperimentLambda()
	var rows []SamplerAblationRow
	for _, name := range benchmarks {
		row := SamplerAblationRow{Benchmark: name}
		for i, tg := range []float64{0, 1e-6, 30} {
			prog, err := workload.ByName(name, seed)
			if err != nil {
				return nil, err
			}
			res, err := core.NewRuntime(prog, core.Config{
				Policy: core.PolicyAIC, System: sys, Lambda: lambda,
				FixedTg: tg, Seed: seed,
			}).Run()
			if err != nil {
				return nil, err
			}
			n, err := res.NET2(lambda)
			if err != nil {
				return nil, err
			}
			switch i {
			case 0:
				row.NET2Adaptive = n
			case 1:
				row.NET2FixedTiny = n
			case 2:
				row.NET2FixedHuge = n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BlockSizeRow is one codec granularity of the block-size ablation.
type BlockSizeRow struct {
	BlockSize int
	Ratio     float64 // compressed/raw over a sampled checkpoint stream
	EncodeMBs float64 // real encode throughput on this machine (MB/s)
}

// AblationBlockSize measures the delta codec's compression ratio and real
// encode throughput across block granularities on sjeng's checkpoint
// stream — the trade the default 64-byte granularity sits on (smaller
// blocks find finer matches but hash more).
func AblationBlockSize(seed uint64, blockSizes []int) ([]BlockSizeRow, error) {
	if len(blockSizes) == 0 {
		blockSizes = []int{16, 32, 64, 128, 256, 1024}
	}
	// Capture realistic page pairs from a short sjeng run.
	prog, err := workload.ByName("sjeng", seed)
	if err != nil {
		return nil, err
	}
	as := memsim.New(0)
	builder := ckpt.NewBuilder(as.PageSize(), 0, 0)
	prog.Init(as)
	builder.FullCheckpoint(as)
	var pairs []delta.PageUpdate
	for now := 0.0; now < 40; now++ {
		prog.Step(as, now, 1)
	}
	for _, idx := range as.DirtyPages() {
		old := builder.PrevPage(idx)
		if old == nil {
			continue
		}
		pairs = append(pairs, delta.PageUpdate{
			Index: idx,
			Old:   append([]byte(nil), old...),
			New:   append([]byte(nil), as.Page(idx)...),
		})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("exp: no hot pages captured")
	}

	rows := make([]BlockSizeRow, len(blockSizes))
	for i, bs := range blockSizes {
		start := time.Now()
		var in, out int
		for _, p := range pairs {
			d := delta.Encode(p.Old, p.New, bs)
			in += len(p.New)
			out += len(d)
		}
		elapsed := time.Since(start).Seconds()
		rows[i] = BlockSizeRow{BlockSize: bs, Ratio: float64(out) / float64(in)}
		if elapsed > 0 {
			rows[i].EncodeMBs = float64(in) / elapsed / 1e6
		}
	}
	return rows, nil
}

// RenderBlockSize formats the block-size ablation.
func RenderBlockSize(rows []BlockSizeRow) string {
	var b strings.Builder
	b.WriteString("Ablation — delta codec block size (sjeng hot pages):\n")
	fmt.Fprintf(&b, "  %9s %8s %12s\n", "block", "ratio", "encode MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %9d %8.3f %12.1f\n", r.BlockSize, r.Ratio, r.EncodeMBs)
	}
	return b.String()
}
