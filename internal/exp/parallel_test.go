package exp

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]int32
	if err := forEach(n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEach(50, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachAllWorkersFailNoDeadlock(t *testing.T) {
	// Every call fails: the producer must still drain and return.
	err := forEach(500, func(i int) error { return errors.New("always") })
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := forEach(-3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSingleItem(t *testing.T) {
	ran := false
	if err := forEach(1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single item not run")
	}
}
