package exp

import (
	"fmt"
	"math"
	"strings"

	"aic/internal/core"
	"aic/internal/failure"
)

// PredictorAccuracyRow quantifies the online predictor's error on one
// benchmark: the mean absolute percentage error of the predicted (c1, dl,
// ds) against the realized values, over the intervals where the stepwise
// model was established.
type PredictorAccuracyRow struct {
	Benchmark string
	Intervals int     // intervals with an established prediction
	MAPEC1    float64 // mean |pred−actual|/actual for c1
	MAPEDL    float64
	MAPEDS    float64
}

// PredictorAccuracy runs AIC on each benchmark and scores its predictions.
// The paper claims the lightweight predictor suffices for per-second online
// decisions; this experiment makes the claim measurable.
func PredictorAccuracy(seed uint64, benchmarks ...string) ([]PredictorAccuracyRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = BenchmarkNames()
	}
	sys := BenchSystem(1)
	lambda := ExperimentLambda()
	rows := make([]PredictorAccuracyRow, len(benchmarks))
	err := forEach(len(benchmarks), func(i int) error {
		res, err := runPolicy(benchmarks[i], core.PolicyAIC, sys, lambda, seed, core.CompressorPA)
		if err != nil {
			return err
		}
		row := PredictorAccuracyRow{Benchmark: benchmarks[i]}
		var c1, dl, ds float64
		for _, iv := range res.Intervals {
			if iv.PredC1 <= 0 && iv.PredDL <= 0 && iv.PredDS <= 0 {
				continue // bootstrap interval: no prediction yet
			}
			row.Intervals++
			c1 += mape(iv.PredC1, iv.C1)
			dl += mape(iv.PredDL, iv.DL)
			ds += mape(iv.PredDS, iv.DS)
		}
		if row.Intervals > 0 {
			n := float64(row.Intervals)
			row.MAPEC1, row.MAPEDL, row.MAPEDS = c1/n, dl/n, ds/n
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

func mape(pred, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(pred-actual) / actual
}

// LambdaRow is one failure-rate point of the sensitivity sweep.
type LambdaRow struct {
	Lambda float64
	AIC    float64
	SIC    float64
	Moody  float64
}

// LambdaSensitivity sweeps the total failure rate on one benchmark under
// the three policies — the paper evaluates only λ = 1e-3 ("unusually high
// ... to be able to collect experimental data"); this shows how the
// policies separate as failures rarefy toward production rates.
func LambdaSensitivity(seed uint64, benchmark string, lambdas []float64) ([]LambdaRow, error) {
	if benchmark == "" {
		benchmark = "milc"
	}
	if len(lambdas) == 0 {
		lambdas = []float64{1e-4, 3e-4, 1e-3, 3e-3}
	}
	sys := BenchSystem(1)
	rows := make([]LambdaRow, len(lambdas))
	for i, l := range lambdas {
		rows[i].Lambda = l
	}
	err := forEach(len(lambdas)*3, func(k int) error {
		i, p := k/3, k%3
		lambda := failure.SplitRate(lambdas[i], failure.CoastalProportions())
		policy := []core.PolicyKind{core.PolicyAIC, core.PolicySIC, core.PolicyMoody}[p]
		n, _, err := PolicyNET2(benchmark, policy, sys, lambda, seed)
		if err != nil {
			return fmt.Errorf("λ=%g/%v: %w", lambdas[i], policy, err)
		}
		switch policy {
		case core.PolicyAIC:
			rows[i].AIC = n
		case core.PolicySIC:
			rows[i].SIC = n
		case core.PolicyMoody:
			rows[i].Moody = n
		}
		return nil
	})
	return rows, err
}

// RenderAccuracy formats the predictor-accuracy and λ-sensitivity studies.
func RenderAccuracy(acc []PredictorAccuracyRow, lam []LambdaRow) string {
	var b strings.Builder
	if len(acc) > 0 {
		b.WriteString("Study — online predictor accuracy (MAPE of predictions vs realized):\n")
		fmt.Fprintf(&b, "  %-11s %4s %8s %8s %8s\n", "benchmark", "iv", "c1", "dl", "ds")
		for _, r := range acc {
			fmt.Fprintf(&b, "  %-11s %4d %7.1f%% %7.1f%% %7.1f%%\n",
				r.Benchmark, r.Intervals, 100*r.MAPEC1, 100*r.MAPEDL, 100*r.MAPEDS)
		}
		b.WriteString("  (iv = intervals with an established stepwise model; 0 = the run\n")
		b.WriteString("   ended within the four-sample bootstrap, as happens when the\n")
		b.WriteString("   transfer window allows only a handful of checkpoints)\n")
	}
	if len(lam) > 0 {
		b.WriteString("Study — failure-rate sensitivity (milc NET² by policy):\n")
		fmt.Fprintf(&b, "  %10s %9s %9s %9s\n", "λ", "AIC", "SIC", "Moody")
		for _, r := range lam {
			fmt.Fprintf(&b, "  %10.0e %9.4f %9.4f %9.4f\n", r.Lambda, r.AIC, r.SIC, r.Moody)
		}
	}
	return b.String()
}
