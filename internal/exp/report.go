package exp

import (
	"fmt"
	"sort"
	"strings"

	"aic/internal/trace"
)

// RenderFig2 formats the delta-dynamics curves as aligned columns (one row
// per second, one latency/size pair per benchmark).
func RenderFig2(series []Fig2Series) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — normalized delta latency / delta size vs checkpoint time (60 s window)\n")
	fmt.Fprintf(&b, "%4s", "t(s)")
	for _, s := range series {
		fmt.Fprintf(&b, "  %10s lat/size", s.Benchmark)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%4.0f", series[0].Points[i].Time)
		for _, s := range series {
			p := s.Points[i]
			fmt.Fprintf(&b, "  %9.2f /%9.2f", p.NormLatency, p.NormSize)
		}
		b.WriteString("\n")
	}
	for _, s := range series {
		fmt.Fprintf(&b, "swing(%s) = %.1fx  ", s.Benchmark, s.Swing())
	}
	b.WriteString("\n")
	return b.String()
}

// RenderScaling formats Fig. 5 or Fig. 6.
func RenderScaling(title string, rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%6s %10s %10s %10s %10s\n", "size", "Moody", "L1L3", "L2L3", "L1L2L3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.0fx %10.4f %10.4f %10.4f %10.4f\n", r.Size, r.Moody, r.L1L3, r.L2L3, r.L1L2L3)
	}
	return b.String()
}

// RenderFig7 formats the sharing-factor study.
func RenderFig7(rows []SharingRow) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — NET² of L2L3 under sharing factors (RMS scaling) vs Moody\n")
	var sfs []int
	if len(rows) > 0 {
		for sf := range rows[0].BySF {
			sfs = append(sfs, sf)
		}
		sort.Ints(sfs)
	}
	fmt.Fprintf(&b, "%6s %10s", "size", "Moody")
	for _, sf := range sfs {
		fmt.Fprintf(&b, "     SF=%-3d", sf)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.0fx %10.4f", r.Size, r.Moody)
		for _, sf := range sfs {
			fmt.Fprintf(&b, " %10.4f", r.BySF[sf])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable1 formats the LANL candidate-job study beside the published
// values.
func RenderTable1(rows []trace.Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — candidate jobs on the five LANL systems (reproduced vs paper)\n")
	fmt.Fprintf(&b, "%4s %8s %7s %7s  %11s %11s  %12s %12s\n",
		"sys", "type", "nodes", "cores", "cand", "paper", "cand(resch)", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %8s %7d %7d  %10.1f%% %10.0f%%  %11.1f%% %11.0f%%\n",
			r.System.ID, r.System.Type, r.System.Nodes, r.System.CoresPerNode,
			100*r.CandidateFrac, 100*r.PaperFrac,
			100*r.CandidateFracReserved, 100*r.PaperFracReserved)
	}
	return b.String()
}

// RenderTable3 formats the benchmark characterization.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3 — benchmarks, compressors and AIC overhead\n")
	fmt.Fprintf(&b, "%-11s %7s  %9s %9s  %9s %9s  %10s %8s\n",
		"benchmark", "base(s)", "ratio-xd3", "ratio-PA", "lat-xd3", "lat-PA", "AIC time", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %7.0f  %9.2f %9.2f  %8.2fs %8.2fs  %9.0fs %7.1f%%\n",
			r.Benchmark, r.BaseTime, r.RatioXdelta3, r.RatioPA,
			r.LatencyXdelta3, r.LatencyPA, r.AICTime, r.AICOverheadPct)
	}
	return b.String()
}

// RenderFig11 formats the three-policy comparison.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig. 11 — NET² of the six benchmarks under AIC / SIC / Moody (1x scale)\n")
	fmt.Fprintf(&b, "%-11s %9s %9s %9s  %12s %12s\n", "benchmark", "AIC", "SIC", "Moody", "AICvsSIC", "AICvsMoody")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %9.4f %9.4f %9.4f  %+11.1f%% %+11.1f%%\n",
			r.Benchmark, r.AIC, r.SIC, r.Moody,
			100*(r.AIC-r.SIC)/r.SIC, 100*(r.AIC-r.Moody)/r.Moody)
	}
	return b.String()
}

// RenderFig12 formats the Milc scaling comparison.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString("Fig. 12 — NET² of Milc, AIC vs SIC, across system scales\n")
	fmt.Fprintf(&b, "%7s %9s %9s %10s\n", "scale", "AIC", "SIC", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2fx %9.4f %9.4f %+9.1f%%\n", r.Scale, r.AIC, r.SIC, 100*(r.AIC-r.SIC)/r.SIC)
	}
	return b.String()
}

// RenderAblations formats the three design-decision studies.
func RenderAblations(comp []CompressorAblationRow, pred []PredictorAblationRow, samp []SamplerAblationRow) string {
	var b strings.Builder
	if len(comp) > 0 {
		b.WriteString("Ablation — compressor (SIC): ratio and NET² per codec\n")
		fmt.Fprintf(&b, "%-11s %8s %8s %8s  %9s %9s %9s\n",
			"benchmark", "r(PA)", "r(xd3)", "r(XOR)", "NET²(PA)", "NET²(xd3)", "NET²(XOR)")
		for _, r := range comp {
			fmt.Fprintf(&b, "%-11s %8.2f %8.2f %8.2f  %9.4f %9.4f %9.4f\n",
				r.Benchmark, r.RatioPA, r.RatioWhole, r.RatioXOR, r.NET2PA, r.NET2Whole, r.NET2XOR)
		}
	}
	if len(pred) > 0 {
		b.WriteString("Ablation — predictor (AIC): stepwise+NGD vs last-value\n")
		fmt.Fprintf(&b, "%-11s %11s %11s %6s %6s\n", "benchmark", "NET²(full)", "NET²(naive)", "iv", "iv(n)")
		for _, r := range pred {
			fmt.Fprintf(&b, "%-11s %11.4f %11.4f %6d %6d\n",
				r.Benchmark, r.NET2Full, r.NET2Naive, r.Intervals, r.IntervalsN)
		}
	}
	if len(samp) > 0 {
		b.WriteString("Ablation — sampler Tg (AIC): adaptive vs pinned\n")
		fmt.Fprintf(&b, "%-11s %12s %12s %12s\n", "benchmark", "adaptive", "tiny Tg", "huge Tg")
		for _, r := range samp {
			fmt.Fprintf(&b, "%-11s %12.4f %12.4f %12.4f\n",
				r.Benchmark, r.NET2Adaptive, r.NET2FixedTiny, r.NET2FixedHuge)
		}
	}
	return b.String()
}
