package exp

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) across min(n, GOMAXPROCS) workers and
// returns the first error. The experiment sweeps are embarrassingly
// parallel — every benchmark/policy/scale cell is an independent
// deterministic simulation — so the harness fans them out to fill the
// machine, exactly the share-by-communicating worker pattern.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for i := range jobs {
				if failed {
					continue // keep draining so the producer never blocks
				}
				if err := fn(i); err != nil {
					failed = true
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
