// Package mpi extends AIC to coordinated checkpointing of multi-process
// MPI jobs — the direction the paper explicitly defers ("AIC for MPI tasks
// requires tracking similarity degrees of all MPI processes for coordinated
// checkpointing ... will be treated in a separate article").
//
// Semantics: the job's ranks run in lockstep; a checkpoint is *global* —
// every rank halts until the slowest rank's local checkpoint completes
// (coordination barrier + in-flight message drain), then the per-rank delta
// compressions and remote transfers proceed concurrently on each node's
// checkpointing core. A failure of any rank rolls the whole job back, so
// the job-level failure rate is the sum over ranks. The adaptive decider
// aggregates every rank's predicted costs (the job-level c_k is the max
// over ranks, since the barrier waits for the slowest) and applies the same
// EVT/Newton–Raphson search as single-process AIC.
package mpi

import (
	"fmt"
	"math"

	"aic/internal/ckpt"
	"aic/internal/memsim"
	"aic/internal/model"
	"aic/internal/numeric"
	"aic/internal/predictor"
	"aic/internal/sim"
	"aic/internal/storage"
	"aic/internal/workload"
)

// Policy selects the coordinated checkpointing policy.
type Policy int

// Coordinated policies.
const (
	CoordinatedSIC Policy = iota // fixed interval
	CoordinatedAIC               // adaptive, rank-aggregated predictions
)

// String names the policy.
func (p Policy) String() string {
	if p == CoordinatedAIC {
		return "coordinated-AIC"
	}
	return "coordinated-SIC"
}

// Config parameterizes a coordinated job run.
type Config struct {
	System storage.System
	Policy Policy
	// Ranks is the number of MPI processes.
	Ranks int
	// LambdaPerRank is each rank's per-level failure rate; the job-level
	// rate is Ranks times it (any rank failure fails the job).
	LambdaPerRank [3]float64
	// Interval is the fixed checkpoint interval (CoordinatedSIC) or the
	// bootstrap interval (CoordinatedAIC). 0 derives a default.
	Interval float64
	// CoordinationCost is the barrier/message-drain time added to every
	// coordinated local checkpoint (the paper's note that c1 for MPI
	// includes coordinated-checkpointing time). Default 0.2 s.
	CoordinationCost float64
	// Seed derives per-rank workload seeds.
	Seed uint64
	// NewProgram builds rank i's workload.
	NewProgram func(rank int, seed uint64) workload.Program
	// WMin/WMax bound the adaptive decider's search.
	WMin, WMax float64
}

func (c *Config) setDefaults(base float64) {
	if c.CoordinationCost <= 0 {
		c.CoordinationCost = 0.2
	}
	if c.Interval <= 0 {
		c.Interval = 5
	}
	if c.WMin <= 0 {
		c.WMin = 1
	}
	if c.WMax <= 0 {
		c.WMax = base
	}
}

// JobLambda returns the job-level failure rates.
func (c Config) JobLambda() [3]float64 {
	var out [3]float64
	for i, r := range c.LambdaPerRank {
		out[i] = r * float64(c.Ranks)
	}
	return out
}

// rank is one MPI process's simulation state.
type rank struct {
	prog    workload.Program
	as      *memsim.AddressSpace
	builder *ckpt.Builder
	predC1  *predictor.Online
	predDL  *predictor.Online
	predDS  *predictor.Online
	lastM   predictor.Metrics
}

// Result reports a coordinated run.
type Result struct {
	Policy    Policy
	Ranks     int
	BaseTime  float64
	WallTime  float64 // includes the coordinated halts
	Intervals []sim.IntervalCosts
	NET2      float64
}

// Run executes the coordinated job and evaluates Eq. (1) at the job level.
func Run(cfg Config) (*Result, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("mpi: need at least one rank")
	}
	if cfg.NewProgram == nil {
		return nil, fmt.Errorf("mpi: no program factory")
	}
	ranks := make([]*rank, cfg.Ranks)
	base := 0.0
	for i := range ranks {
		prog := cfg.NewProgram(i, cfg.Seed+uint64(i)*977)
		if prog.BaseTime() > base {
			base = prog.BaseTime()
		}
		as := memsim.New(0)
		r := &rank{
			prog:    prog,
			as:      as,
			builder: ckpt.NewBuilder(as.PageSize(), 0, 4096),
			predC1:  predictor.NewOnline(4, 3, 0.5),
			predDL:  predictor.NewOnline(4, 3, 0.5),
			predDS:  predictor.NewOnline(4, 3, 0.5),
		}
		prog.Init(as)
		r.builder.FullCheckpoint(as) // pre-staged initial image
		ranks[i] = r
	}
	cfg.setDefaults(base)
	lambda := cfg.JobLambda()

	res := &Result{Policy: cfg.Policy, Ranks: cfg.Ranks, BaseTime: base}
	work := 0.0
	wall := 0.0
	lastCkpt := 0.0
	prevWindow := 0.0
	prevParams := model.Params{Lambda: lambda}
	havePrev := false

	// metricsOf gathers rank r's predictor features at the current moment.
	metricsOf := func(r *rank) predictor.Metrics {
		m := predictor.Metrics{DP: float64(r.as.DirtyCount()), T: work - lastCkpt}
		n := 0
		var jd, di float64
		for _, idx := range r.as.DirtyPages() {
			if n >= 16 {
				break
			}
			old := r.builder.PrevPage(idx)
			if old == nil {
				continue
			}
			jd += predictor.JaccardDistance(r.as.Page(idx), old)
			di += predictor.DivergenceIndex(r.as.Page(idx))
			n++
		}
		if n > 0 {
			m.JD, m.DI = jd/float64(n), di/float64(n)
		}
		return m
	}

	// predictJob aggregates rank predictions into job-level params: the
	// barrier waits for the slowest rank at every stage.
	predictJob := func() model.Params {
		var c1, win float64
		b2 := cfg.System.RAID5.BandwidthBps
		b3 := cfg.System.Remote.BandwidthBps
		var c2win float64
		for _, r := range ranks {
			m := metricsOf(r)
			r.lastM = m
			rawCap := m.DP*float64(r.as.PageSize()) + 4096
			pc1 := math.Min(r.predC1.Predict(m), cfg.System.LocalDisk.TransferTime(int64(rawCap)))
			pdl := math.Min(r.predDL.Predict(m), cfg.System.CompressTime(int64(rawCap), int64(rawCap)))
			pds := math.Min(r.predDS.Predict(m), rawCap)
			if pc1 > c1 {
				c1 = pc1
			}
			w3 := pdl
			w2 := pdl
			if b3 > 0 {
				w3 += pds / b3
			}
			if b2 > 0 {
				w2 += pds / b2
			}
			if w3 > win {
				win = w3
			}
			if w2 > c2win {
				c2win = w2
			}
		}
		c1 += cfg.CoordinationCost
		p := model.Params{Lambda: lambda}
		p.C = [3]float64{c1, c1 + c2win, c1 + win}
		p.R = p.C
		return p
	}

	takeCheckpoint := func() {
		var c1Max, winMax, c2winMax float64
		var dsSum float64
		for _, r := range ranks {
			m := metricsOf(r)
			c, st := r.builder.DeltaCheckpoint(r.as)
			raw := int64(st.InputBytes + len(c.CPUState))
			rc1 := cfg.System.LocalDisk.TransferTime(raw)
			rdl := cfg.System.CompressTime(int64(st.InputBytes+st.HotPages*r.as.PageSize()), int64(c.Size()))
			rds := float64(c.Size())
			if rc1 > c1Max {
				c1Max = rc1
			}
			w3 := rdl + cfg.System.Remote.TransferTime(int64(rds)) - cfg.System.Remote.LatencySec
			if b := cfg.System.Remote.BandwidthBps; b > 0 {
				w3 = rdl + rds/b
			}
			if w3 > winMax {
				winMax = w3
			}
			w2 := rdl
			if b := cfg.System.RAID5.BandwidthBps; b > 0 {
				w2 += rds / b
			}
			if w2 > c2winMax {
				c2winMax = w2
			}
			dsSum += rds
			r.predC1.Observe(m, rc1)
			r.predDL.Observe(m, rdl)
			r.predDS.Observe(m, rds)
		}
		c1 := c1Max + cfg.CoordinationCost
		iv := sim.IntervalCosts{
			W:  math.Max(cfg.WMin, (work-lastCkpt)-prevWindow),
			C1: c1,
			C2: c1 + c2winMax,
			C3: c1 + winMax,
		}
		iv.R2, iv.R3 = iv.C2, iv.C3
		res.Intervals = append(res.Intervals, iv)
		wall += c1 // every rank halts for the coordinated local checkpoint
		prevWindow = winMax
		prevParams = model.Params{Lambda: lambda, C: [3]float64{iv.C1, iv.C2, iv.C3}, R: [3]float64{iv.C1, iv.C2, iv.C3}}
		havePrev = true
		lastCkpt = work
	}

	ready := func() bool {
		for _, r := range ranks {
			if !r.predC1.Ready() || !r.predDL.Ready() || !r.predDS.Ready() {
				return false
			}
		}
		return true
	}

	const dt = 1.0
	for work < base {
		step := math.Min(dt, base-work)
		for _, r := range ranks {
			if work < r.prog.BaseTime() {
				r.prog.Step(r.as, work, math.Min(step, r.prog.BaseTime()-work))
			}
		}
		work += step
		wall += step
		if work >= base {
			break
		}
		elapsed := work - lastCkpt
		effW := elapsed - prevWindow
		if effW <= 0 {
			continue // previous coordinated transfers still in flight
		}
		take := false
		switch {
		case cfg.Policy == CoordinatedSIC || !ready():
			take = elapsed >= cfg.Interval
		default:
			cur := predictJob()
			prev := cur
			if havePrev {
				prev = prevParams
			}
			obj := func(w float64) float64 {
				ivm, err := model.EvalL2L3Dynamic(w, cur, prev)
				if err != nil {
					return math.Inf(1)
				}
				return ivm.NET2()
			}
			wStar, objStar, _ := numeric.MinimizeEVT(obj, cfg.WMin, cfg.WMax, 200)
			take = wStar <= effW || obj(effW) <= objStar*1.001
		}
		if take {
			takeCheckpoint()
		}
	}
	anyDirty := false
	for _, r := range ranks {
		if r.as.DirtyCount() > 0 {
			anyDirty = true
		}
	}
	if anyDirty {
		takeCheckpoint()
	}
	res.WallTime = wall

	n, err := sim.AnalyticNET2(res.Intervals, lambda)
	if err != nil {
		return nil, err
	}
	res.NET2 = n
	return res, nil
}
