package mpi

import (
	"testing"

	"aic/internal/failure"
	"aic/internal/storage"
	"aic/internal/workload"
)

func testConfig(policy Policy, ranks int) Config {
	perRank := failure.SplitRate(1e-3/4, failure.CoastalProportions())
	return Config{
		System:        storage.BenchSystem(1, int64(workload.ReferenceFootprintPages)*4096),
		Policy:        policy,
		Ranks:         ranks,
		LambdaPerRank: perRank,
		Interval:      20,
		Seed:          5,
		NewProgram: func(rank int, seed uint64) workload.Program {
			return workload.Sphinx3(seed)
		},
	}
}

func TestValidation(t *testing.T) {
	cfg := testConfig(CoordinatedSIC, 0)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero ranks accepted")
	}
	cfg = testConfig(CoordinatedSIC, 2)
	cfg.NewProgram = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("missing factory accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	if CoordinatedSIC.String() != "coordinated-SIC" || CoordinatedAIC.String() != "coordinated-AIC" {
		t.Fatal("names")
	}
}

func TestJobLambdaScalesWithRanks(t *testing.T) {
	cfg := testConfig(CoordinatedSIC, 8)
	job := cfg.JobLambda()
	for i := range job {
		if job[i] != cfg.LambdaPerRank[i]*8 {
			t.Fatalf("job λ[%d] = %v", i, job[i])
		}
	}
}

func TestCoordinatedRunBasics(t *testing.T) {
	res, err := Run(testConfig(CoordinatedSIC, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 4 || res.Policy != CoordinatedSIC {
		t.Fatalf("header: %+v", res)
	}
	if len(res.Intervals) < 5 {
		t.Fatalf("only %d coordinated checkpoints", len(res.Intervals))
	}
	if res.NET2 < 1 {
		t.Fatalf("NET² = %v", res.NET2)
	}
	if res.WallTime <= res.BaseTime {
		t.Fatal("coordinated halts must add wall time")
	}
	for i, iv := range res.Intervals {
		// Every coordinated c1 carries the coordination cost.
		if iv.C1 < 0.2 {
			t.Fatalf("interval %d: c1 %v below coordination cost", i, iv.C1)
		}
		if iv.C3 < iv.C2 || iv.C2 < iv.C1 {
			t.Fatalf("interval %d malformed: %+v", i, iv)
		}
	}
}

func TestMoreRanksRaiseNET2(t *testing.T) {
	small, err := Run(testConfig(CoordinatedSIC, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(testConfig(CoordinatedSIC, 16))
	if err != nil {
		t.Fatal(err)
	}
	// 16× the job failure rate and a slowest-rank barrier: NET² must grow.
	if big.NET2 <= small.NET2 {
		t.Fatalf("NET² must grow with ranks: %v vs %v", small.NET2, big.NET2)
	}
}

func TestCoordinatedAICCompetitive(t *testing.T) {
	sic, err := Run(testConfig(CoordinatedSIC, 4))
	if err != nil {
		t.Fatal(err)
	}
	aic, err := Run(testConfig(CoordinatedAIC, 4))
	if err != nil {
		t.Fatal(err)
	}
	if aic.NET2 < 1 {
		t.Fatalf("AIC NET² = %v", aic.NET2)
	}
	// The adaptive extension must at least stay in SIC's neighbourhood
	// (within 5%) — the paper's deferred design, implemented here, has the
	// same degenerate regime at 1× as single-process AIC.
	if aic.NET2 > sic.NET2*1.05 {
		t.Fatalf("coordinated AIC %v far above SIC %v", aic.NET2, sic.NET2)
	}
}

func TestHeterogeneousRanks(t *testing.T) {
	cfg := testConfig(CoordinatedSIC, 3)
	cfg.NewProgram = func(rank int, seed uint64) workload.Program {
		if rank == 0 {
			return workload.Bzip2(seed)
		}
		return workload.Sphinx3(seed)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Base time is the slowest rank's.
	if res.BaseTime != 749 {
		t.Fatalf("base = %v, want sphinx3's 749", res.BaseTime)
	}
}
