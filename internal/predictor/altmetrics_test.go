package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"aic/internal/numeric"
)

func TestCosineDistanceBasics(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	if CosineDistance(a, a) > 1e-12 {
		t.Fatal("identical pages must have distance ~0")
	}
	// Same distribution in different order: histogram metric sees 0.
	if CosineDistance([]byte{1, 2}, []byte{2, 1}) > 1e-12 {
		t.Fatal("permuted bytes must be histogram-identical")
	}
	// Disjoint byte values: orthogonal histograms.
	if d := CosineDistance([]byte{1, 1}, []byte{2, 2}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint values: %v", d)
	}
	if CosineDistance(nil, nil) != 0 {
		t.Fatal("empty pages")
	}
	if CosineDistance([]byte{1}, nil) != 1 {
		t.Fatal("empty-vs-nonempty must be maximal")
	}
}

func TestM2IndexBasics(t *testing.T) {
	if M2Index(make([]byte, 1000)) != 0 {
		t.Fatal("constant page must have M2 = 0")
	}
	if M2Index(nil) != 0 {
		t.Fatal("empty page")
	}
	uniform := make([]byte, 256)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if got := M2Index(uniform); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform page M2 = %v, want 1", got)
	}
}

func TestMetricBounds(t *testing.T) {
	f := func(cur, old []byte) bool {
		cd := CosineDistance(cur, old)
		m2 := M2Index(cur)
		return cd >= -1e-12 && cd <= 1+1e-12 && m2 >= -1e-12 && m2 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The footnote-1 claim: under the target applications' page-content
// distributions, the alternative metrics behave closely like JD/DI — as
// the fraction of a page scrambled grows, all four dissimilarity metrics
// grow together (rank correlation near 1).
func TestAlternativeMetricsTrackJDAndDI(t *testing.T) {
	rng := numeric.NewRNG(7)
	base := make([]byte, 4096)
	rng.Bytes(base)

	var jd, cd, di, m2 []float64
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		cur := append([]byte(nil), base...)
		n := int(frac * float64(len(cur)))
		chunk := make([]byte, n)
		rng.Bytes(chunk)
		copy(cur, chunk)
		jd = append(jd, JaccardDistance(cur, base))
		cd = append(cd, CosineDistance(cur, base))
		// Intra-page: mix a constant page with random content.
		intra := make([]byte, 4096)
		copy(intra[:n], chunk)
		di = append(di, DivergenceIndex(intra))
		m2 = append(m2, M2Index(intra))
	}
	monotone := func(xs []float64) bool {
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if !monotone(jd) || !monotone(di) {
		t.Fatalf("reference metrics not monotone: jd=%v di=%v", jd, di)
	}
	if !monotone(cd) {
		t.Fatalf("cosine distance not tracking scramble fraction: %v", cd)
	}
	if !monotone(m2) {
		t.Fatalf("M2 not tracking scramble fraction: %v", m2)
	}
}

// And the cost claim: JD and DI are the cheap ones.
func TestMetricRelativeCosts(t *testing.T) {
	rng := numeric.NewRNG(9)
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	rng.Bytes(a)
	rng.Bytes(b)
	const iters = 2000
	timeIt := func(f func()) float64 {
		// Rough relative cost via loop counts; wall-clock timing would be
		// flaky in CI, so just execute and rely on the benchmark suite for
		// real numbers.
		for i := 0; i < iters; i++ {
			f()
		}
		return 1
	}
	timeIt(func() { JaccardDistance(a, b) })
	timeIt(func() { CosineDistance(a, b) })
	// Correctness-of-integration smoke: all four computable on one page.
	_ = DivergenceIndex(a)
	_ = M2Index(a)
}
