package predictor

import (
	"errors"
	"fmt"
	"math"

	"aic/internal/numeric"
)

// Model is a linear predictor over a stepwise-selected subset of the
// candidate features, refreshed online by normalized gradient descent.
type Model struct {
	Selected  []int     // candidate indices in use
	Weights   []float64 // [0] = intercept, then one per selected feature
	LearnRate float64   // normalized GD step size η ∈ (0, 1]
}

// design builds the model's input vector (with leading 1 for the intercept)
// from a full candidate vector.
func (m *Model) design(cands []float64) []float64 {
	x := make([]float64, 1+len(m.Selected))
	x[0] = 1
	for i, idx := range m.Selected {
		x[i+1] = cands[idx]
	}
	return x
}

// Predict evaluates the model at the given metrics.
func (m *Model) Predict(metrics Metrics) float64 {
	x := m.design(metrics.Candidates())
	var sum numeric.KahanSum
	for i, w := range m.Weights {
		sum.Add(w * x[i])
	}
	return sum.Value()
}

// Update applies one normalized gradient-descent step (Cesa-Bianchi et
// al.): w ← w + η·(y − ŷ)·x / ‖x‖², whose worst-case quadratic loss is
// bounded for any input sequence — the property that lets AIC learn online
// without profiling.
func (m *Model) Update(metrics Metrics, y float64) {
	x := m.design(metrics.Candidates())
	var pred, norm numeric.KahanSum
	for i, w := range m.Weights {
		pred.Add(w * x[i])
		norm.Add(x[i] * x[i])
	}
	n := norm.Value()
	if n == 0 {
		return
	}
	step := m.LearnRate * (y - pred.Value()) / n
	if !finite(step) {
		return // a poisoned observation must not contaminate the weights
	}
	for i := range m.Weights {
		m.Weights[i] += step * x[i]
	}
}

// ErrTooFewSamples reports a stepwise fit attempted before the bootstrap
// sample count is reached.
var ErrTooFewSamples = errors.New("predictor: too few samples for stepwise fit")

// ErrNonFinite reports NaN or ±Inf contaminating a fit's inputs or its
// solved coefficients. Measured metrics can go non-finite (a zero-duration
// interval's rate, an overflowed counter); letting them through would poison
// every weight and every later prediction silently.
var ErrNonFinite = errors.New("predictor: non-finite values in fit")

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// rss returns the residual sum of squares of a least-squares fit over the
// given candidate subset, along with the fitted weights.
func rss(samples []Metrics, targets []float64, subset []int) (float64, []float64, error) {
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		if !finite(targets[i]) {
			return 0, nil, ErrNonFinite
		}
		c := s.Candidates()
		row := make([]float64, 1+len(subset))
		row[0] = 1
		for j, idx := range subset {
			if !finite(c[idx]) {
				return 0, nil, ErrNonFinite
			}
			row[j+1] = c[idx]
		}
		rows[i] = row
	}
	beta, err := numeric.LeastSquares(rows, targets)
	if err != nil {
		return 0, nil, err
	}
	for _, b := range beta {
		if !finite(b) {
			return 0, nil, ErrNonFinite
		}
	}
	var sum numeric.KahanSum
	for i, row := range rows {
		var pred numeric.KahanSum
		for j, b := range beta {
			pred.Add(b * row[j])
		}
		r := targets[i] - pred.Value()
		sum.Add(r * r)
	}
	return sum.Value(), beta, nil
}

// FitStepwise performs forward stepwise selection over the candidate
// features: starting from an intercept-only model, it greedily adds the
// candidate giving the largest residual-sum-of-squares reduction until
// maxTerms features are selected or no candidate improves the fit by more
// than 0.1%. The paper bootstraps with four samples and up to three terms.
func FitStepwise(samples []Metrics, targets []float64, maxTerms int, learnRate float64) (*Model, error) {
	if len(samples) != len(targets) {
		return nil, fmt.Errorf("predictor: %d samples vs %d targets", len(samples), len(targets))
	}
	if len(samples) < 2 || len(samples) < maxTerms+1 {
		return nil, ErrTooFewSamples
	}
	if learnRate <= 0 || learnRate > 1 {
		learnRate = 0.5
	}
	selected := []int{}
	bestRSS, bestBeta, err := rss(samples, targets, selected)
	if err != nil {
		return nil, err
	}
	used := make([]bool, NumCandidates)
	for len(selected) < maxTerms {
		improveIdx := -1
		improveRSS := bestRSS
		var improveBeta []float64
		for cand := 0; cand < NumCandidates; cand++ {
			if used[cand] {
				continue
			}
			trial := append(append([]int(nil), selected...), cand)
			r, beta, err := rss(samples, targets, trial)
			if err != nil {
				continue
			}
			if r < improveRSS {
				improveRSS, improveIdx, improveBeta = r, cand, beta
			}
		}
		if improveIdx < 0 || improveRSS > bestRSS*0.999 {
			break
		}
		selected = append(selected, improveIdx)
		used[improveIdx] = true
		bestRSS, bestBeta = improveRSS, improveBeta
	}
	return &Model{Selected: selected, Weights: bestBeta, LearnRate: learnRate}, nil
}

// Online wraps the bootstrap-then-learn lifecycle of one target variable
// (c1, dl or ds): it accumulates samples until the bootstrap threshold,
// fits the stepwise model once, then refines it with normalized GD on every
// subsequent observation. Before the model exists it predicts the running
// mean of the observed targets.
type Online struct {
	bootstrap int
	maxTerms  int
	learnRate float64
	samples   []Metrics
	targets   []float64
	model     *Model
	meanSum   numeric.KahanSum
	meanN     int
}

// NewOnline creates an online predictor. bootstrap ≤ 0 selects the paper's
// four samples; maxTerms ≤ 0 selects three.
func NewOnline(bootstrap, maxTerms int, learnRate float64) *Online {
	if bootstrap <= 0 {
		bootstrap = 4
	}
	if maxTerms <= 0 {
		maxTerms = 3
	}
	return &Online{bootstrap: bootstrap, maxTerms: maxTerms, learnRate: learnRate}
}

// Ready reports whether the stepwise model has been established.
func (o *Online) Ready() bool { return o.model != nil }

// Model exposes the fitted model (nil before bootstrap), for inspection.
func (o *Online) Model() *Model { return o.model }

// Observe feeds a measured (metrics, target) pair back into the predictor.
// Pairs carrying NaN or ±Inf are dropped whole: one bad measurement must
// not poison the bootstrap fit, the running mean, or the online weights.
func (o *Online) Observe(m Metrics, y float64) {
	if !finite(y) {
		return
	}
	for _, c := range m.Candidates() {
		if !finite(c) {
			return
		}
	}
	o.meanSum.Add(y)
	o.meanN++
	if o.model != nil {
		o.model.Update(m, y)
		return
	}
	o.samples = append(o.samples, m)
	o.targets = append(o.targets, y)
	if len(o.samples) >= o.bootstrap {
		model, err := FitStepwise(o.samples, o.targets, o.maxTerms, o.learnRate)
		if err == nil {
			o.model = model
			o.samples, o.targets = nil, nil
		}
	}
}

// Predict estimates the target at the given metrics. Predictions are
// clamped to be non-negative, as every target (latency, size) is.
func (o *Online) Predict(m Metrics) float64 {
	var y float64
	if o.model != nil {
		y = o.model.Predict(m)
	} else if o.meanN > 0 {
		y = o.meanSum.Value() / float64(o.meanN)
	}
	return math.Max(0, y)
}
