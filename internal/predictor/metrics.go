// Package predictor implements AIC's lightweight prediction pipeline
// (Section IV.D): the Jaccard Distance and Divergence Index page metrics,
// the composite candidate feature set Φ-derived {C1^γ·C2^ζ | 1 ≤ γ+ζ ≤ 2},
// forward stepwise regression for model bootstrap, and the normalized
// Gradient Descent online learner that keeps the model current without any
// offline profiling.
package predictor

// JaccardDistance returns JD(P, P') = 1 − m/p, the fraction of byte
// positions whose values differ between a hot page and its previous
// checkpointed version (0 = identical, 1 = totally different). Slices of
// different lengths compare only the common prefix, counting the excess as
// dissimilar.
func JaccardDistance(cur, old []byte) float64 {
	n := len(cur)
	if len(old) > n {
		n = len(old)
	}
	if n == 0 {
		return 0
	}
	common := len(cur)
	if len(old) < common {
		common = len(old)
	}
	m := 0
	for i := 0; i < common; i++ {
		if cur[i] == old[i] {
			m++
		}
	}
	return 1 - float64(m)/float64(n)
}

// DivergenceIndex returns DI(P) = 1 − v/p, where v is the occurrence count
// of the page's most popular byte value — the paper's intra-page
// self-dissimilarity metric (0 = constant page, →1 = high-entropy page).
func DivergenceIndex(p []byte) float64 {
	if len(p) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range p {
		counts[b]++
	}
	v := 0
	for _, c := range counts {
		if c > v {
			v = c
		}
	}
	return 1 - float64(v)/float64(len(p))
}

// Metrics is the lightweight base feature set Φ = {DP, t, JD, DI} gathered
// at a checkpoint decision point: dirty-page count, elapsed time since the
// last local checkpoint, and the mean JD/DI over sampled hot pages.
type Metrics struct {
	DP float64 // number of dirty pages
	T  float64 // elapsed time since the last local checkpoint (s)
	JD float64 // mean Jaccard distance of sampled hot pages
	DI float64 // mean divergence index of sampled hot pages
}

// NumCandidates is the size of the composite candidate feature set:
// 4 singles, 4 squares, and 6 pairwise products ({C1^γ·C2^ζ, 1 ≤ γ+ζ ≤ 2}).
const NumCandidates = 14

// CandidateNames labels the candidate features in Candidates() order.
func CandidateNames() []string {
	return []string{
		"DP", "t", "JD", "DI",
		"DP²", "t²", "JD²", "DI²",
		"DP·t", "DP·JD", "DP·DI", "t·JD", "t·DI", "JD·DI",
	}
}

// Candidates expands the base metrics into the full candidate vector that
// stepwise regression selects from.
func (m Metrics) Candidates() []float64 {
	return []float64{
		m.DP, m.T, m.JD, m.DI,
		m.DP * m.DP, m.T * m.T, m.JD * m.JD, m.DI * m.DI,
		m.DP * m.T, m.DP * m.JD, m.DP * m.DI, m.T * m.JD, m.T * m.DI, m.JD * m.DI,
	}
}
