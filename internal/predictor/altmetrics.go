package predictor

import "math"

// Alternative page metrics the paper's footnote 1 reports examining before
// settling on JD and DI: Cosine Similarity between byte-value histograms of
// a hot page and its previous version, and the Gibbs–Poston qualitative
// variation index M2. Both were found "closely similar to JD and DI under
// our target applications" with higher computational cost — a claim the
// metric-correlation test reproduces.

// CosineDistance returns 1 − cos(θ) between the byte-value histograms of
// the two pages (0 = identical distributions, →1 = orthogonal). Note this
// is distribution-level dissimilarity, blind to byte positions — cheaper
// than edit distance, coarser than JD.
func CosineDistance(cur, old []byte) float64 {
	if len(cur) == 0 && len(old) == 0 {
		return 0
	}
	var a, b [256]float64
	for _, c := range cur {
		a[c]++
	}
	for _, c := range old {
		b[c]++
	}
	var dot, na, nb float64
	for i := 0; i < 256; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	cos := dot / math.Sqrt(na*nb)
	if cos > 1 {
		cos = 1
	}
	return 1 - cos
}

// M2Index returns the Gibbs–Poston M2 index of qualitative variation of a
// page's byte values:
//
//	M2 = (k/(k−1)) · (1 − Σ p_i²)
//
// over the k = 256 byte-value categories. Like DI it measures intra-page
// self-dissimilarity (0 = constant page, →1 = uniform byte distribution),
// but weighs the whole distribution rather than only the mode.
func M2Index(p []byte) float64 {
	if len(p) == 0 {
		return 0
	}
	var counts [256]float64
	for _, b := range p {
		counts[b]++
	}
	n := float64(len(p))
	sumSq := 0.0
	for _, c := range counts {
		f := c / n
		sumSq += f * f
	}
	const k = 256.0
	return (k / (k - 1)) * (1 - sumSq)
}
