package predictor

import (
	"errors"
	"math"
	"testing"
)

func allFinite(ws []float64) bool {
	for _, w := range ws {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return false
		}
	}
	return true
}

// TestFitStepwiseEdgeCases drives the bootstrap fit through the degenerate
// sample sets an online system actually produces: too little data, linearly
// dependent features, constant targets, and measurement garbage (NaN/Inf).
// The contract under test: either a usable model with finite coefficients,
// or a clean error — never NaN weights.
func TestFitStepwiseEdgeCases(t *testing.T) {
	mk := func(dp, tt, jd, di float64) Metrics { return Metrics{DP: dp, T: tt, JD: jd, DI: di} }
	cases := []struct {
		name     string
		samples  []Metrics
		targets  []float64
		maxTerms int
		wantErr  error // nil = fit must succeed
	}{
		{
			name:     "fewer samples than bootstrap",
			samples:  []Metrics{mk(1, 1, 0, 0), mk(2, 1, 0, 0), mk(3, 1, 0, 0)},
			targets:  []float64{1, 2, 3},
			maxTerms: 3,
			wantErr:  ErrTooFewSamples,
		},
		{
			name:     "single sample",
			samples:  []Metrics{mk(1, 1, 0, 0)},
			targets:  []float64{1},
			maxTerms: 1,
			wantErr:  ErrTooFewSamples,
		},
		{
			name: "collinear features",
			// T is exactly 2·DP everywhere, so the candidate matrix is
			// rank-deficient; the ridge-stabilized solver must still return
			// finite coefficients.
			samples:  []Metrics{mk(1, 2, 0, 0), mk(2, 4, 0, 0), mk(3, 6, 0, 0), mk(4, 8, 0, 0), mk(5, 10, 0, 0)},
			targets:  []float64{3, 5, 7, 9, 11},
			maxTerms: 3,
		},
		{
			name:     "identical samples",
			samples:  []Metrics{mk(2, 3, 0.5, 0.5), mk(2, 3, 0.5, 0.5), mk(2, 3, 0.5, 0.5), mk(2, 3, 0.5, 0.5), mk(2, 3, 0.5, 0.5)},
			targets:  []float64{7, 7, 7, 7, 7},
			maxTerms: 3,
		},
		{
			name:     "all-zero targets",
			samples:  []Metrics{mk(1, 1, 0.1, 0.2), mk(2, 3, 0.4, 0.1), mk(5, 2, 0.7, 0.9), mk(3, 4, 0.2, 0.5), mk(4, 1, 0.9, 0.3)},
			targets:  []float64{0, 0, 0, 0, 0},
			maxTerms: 3,
		},
		{
			name: "NaN feature",
			// DP is garbage in every sample; candidates built from it must
			// be skipped, not fitted into NaN weights.
			samples:  []Metrics{mk(math.NaN(), 1, 0.1, 0), mk(math.NaN(), 2, 0.2, 0), mk(math.NaN(), 3, 0.3, 0), mk(math.NaN(), 4, 0.4, 0), mk(math.NaN(), 5, 0.5, 0)},
			targets:  []float64{2, 4, 6, 8, 10},
			maxTerms: 3,
		},
		{
			name:     "Inf feature",
			samples:  []Metrics{mk(math.Inf(1), 1, 0, 0), mk(math.Inf(1), 2, 0, 0), mk(math.Inf(1), 3, 0, 0), mk(math.Inf(1), 4, 0, 0), mk(math.Inf(1), 5, 0, 0)},
			targets:  []float64{2, 4, 6, 8, 10},
			maxTerms: 3,
		},
		{
			name:     "NaN target",
			samples:  []Metrics{mk(1, 1, 0, 0), mk(2, 2, 0, 0), mk(3, 3, 0, 0), mk(4, 4, 0, 0), mk(5, 5, 0, 0)},
			targets:  []float64{2, math.NaN(), 6, 8, 10},
			maxTerms: 3,
			wantErr:  ErrNonFinite,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := FitStepwise(tc.samples, tc.targets, tc.maxTerms, 0.5)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("fit failed: %v", err)
			}
			if !allFinite(m.Weights) {
				t.Fatalf("fit produced non-finite weights %v (selected %v)", m.Weights, m.Selected)
			}
			// The fitted model must also predict finitely at its own inputs.
			for _, s := range tc.samples {
				if y := m.Predict(s); math.IsNaN(y) && tc.name != "NaN feature" && tc.name != "Inf feature" {
					t.Fatalf("prediction at fitted sample is NaN")
				}
			}
		})
	}
}

// TestUpdateRejectsPoisonedObservations pins the online-learning guard: a
// NaN/Inf observation leaves the weights untouched instead of contaminating
// them forever.
func TestUpdateRejectsPoisonedObservations(t *testing.T) {
	m := &Model{Selected: []int{0}, Weights: []float64{1, 2}, LearnRate: 0.5}
	before := append([]float64(nil), m.Weights...)
	m.Update(Metrics{DP: 3}, math.NaN())
	m.Update(Metrics{DP: math.Inf(1)}, 5)
	m.Update(Metrics{DP: math.NaN()}, 5)
	for i := range before {
		if m.Weights[i] != before[i] {
			t.Fatalf("poisoned update changed weights: %v -> %v", before, m.Weights)
		}
	}
	// A healthy update still learns.
	m.Update(Metrics{DP: 3}, 100)
	if m.Weights[0] == before[0] && m.Weights[1] == before[1] {
		t.Fatal("healthy update did not move the weights")
	}
	if !allFinite(m.Weights) {
		t.Fatalf("weights went non-finite: %v", m.Weights)
	}
}

// TestOnlineDropsNonFinitePairs pins the ingestion guard: garbage
// observations neither poison the pre-model running mean nor enter the
// bootstrap sample set.
func TestOnlineDropsNonFinitePairs(t *testing.T) {
	o := NewOnline(4, 3, 0.5)
	o.Observe(Metrics{DP: 1}, math.NaN())
	o.Observe(Metrics{DP: math.Inf(-1)}, 3)
	if y := o.Predict(Metrics{DP: 1}); y != 0 {
		t.Fatalf("mean after only poisoned observations = %v, want 0", y)
	}
	// Four clean observations bootstrap the model despite the garbage.
	o.Observe(Metrics{DP: 1, T: 1}, 2)
	o.Observe(Metrics{DP: 2, T: 1}, 4)
	o.Observe(Metrics{DP: 3, T: 2}, 6)
	o.Observe(Metrics{DP: 4, T: 2}, 8)
	if !o.Ready() {
		t.Fatal("clean observations did not bootstrap the model")
	}
	if !allFinite(o.Model().Weights) {
		t.Fatalf("bootstrapped weights non-finite: %v", o.Model().Weights)
	}
	if y := o.Predict(Metrics{DP: 5, T: 3}); math.IsNaN(y) || math.IsInf(y, 0) {
		t.Fatalf("prediction non-finite: %v", y)
	}
}
