package predictor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"aic/internal/numeric"
)

func TestJaccardDistance(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	if JaccardDistance(a, a) != 0 {
		t.Fatal("identical pages must have JD 0")
	}
	b := []byte{9, 9, 9, 9}
	if JaccardDistance(a, b) != 1 {
		t.Fatal("totally different pages must have JD 1")
	}
	half := []byte{1, 2, 9, 9}
	if JaccardDistance(a, half) != 0.5 {
		t.Fatalf("JD = %v, want 0.5", JaccardDistance(a, half))
	}
	if JaccardDistance(nil, nil) != 0 {
		t.Fatal("empty pages")
	}
	// Length mismatch: excess counts as dissimilar.
	if got := JaccardDistance([]byte{1, 2}, []byte{1, 2, 3, 4}); got != 0.5 {
		t.Fatalf("mismatched lengths JD = %v", got)
	}
}

func TestDivergenceIndex(t *testing.T) {
	if DivergenceIndex(make([]byte, 100)) != 0 {
		t.Fatal("constant page must have DI 0")
	}
	if DivergenceIndex(nil) != 0 {
		t.Fatal("empty page")
	}
	p := make([]byte, 256)
	for i := range p {
		p[i] = byte(i)
	}
	want := 1 - 1.0/256
	if math.Abs(DivergenceIndex(p)-want) > 1e-12 {
		t.Fatalf("uniform page DI = %v, want %v", DivergenceIndex(p), want)
	}
}

func TestMetricRanges(t *testing.T) {
	f := func(cur, old []byte) bool {
		jd := JaccardDistance(cur, old)
		di := DivergenceIndex(cur)
		return jd >= 0 && jd <= 1 && di >= 0 && di <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesShape(t *testing.T) {
	m := Metrics{DP: 2, T: 3, JD: 0.5, DI: 0.25}
	c := m.Candidates()
	if len(c) != NumCandidates || len(CandidateNames()) != NumCandidates {
		t.Fatalf("candidate count %d", len(c))
	}
	if c[0] != 2 || c[4] != 4 || c[8] != 6 || c[13] != 0.125 {
		t.Fatalf("candidates = %v", c)
	}
}

func TestFitStepwiseRecoversLinearTruth(t *testing.T) {
	// y = 10 + 3·DP + 2·t: stepwise must select DP and t.
	rng := numeric.NewRNG(1)
	var samples []Metrics
	var targets []float64
	for i := 0; i < 40; i++ {
		m := Metrics{DP: rng.Float64() * 100, T: rng.Float64() * 50, JD: rng.Float64(), DI: rng.Float64()}
		samples = append(samples, m)
		targets = append(targets, 10+3*m.DP+2*m.T+0.01*rng.NormFloat64())
	}
	model, err := FitStepwise(samples, targets, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Check predictive accuracy on fresh points.
	for i := 0; i < 20; i++ {
		m := Metrics{DP: rng.Float64() * 100, T: rng.Float64() * 50, JD: rng.Float64(), DI: rng.Float64()}
		want := 10 + 3*m.DP + 2*m.T
		got := model.Predict(m)
		if math.Abs(got-want) > 0.05*math.Abs(want)+1 {
			t.Fatalf("predict %v, want %v (selected %v)", got, want, model.Selected)
		}
	}
	if len(model.Selected) > 3 {
		t.Fatalf("selected %d terms", len(model.Selected))
	}
}

func TestFitStepwiseSelectsComposite(t *testing.T) {
	// y driven purely by DP·JD: the composite term must carry the fit.
	rng := numeric.NewRNG(2)
	var samples []Metrics
	var targets []float64
	for i := 0; i < 60; i++ {
		m := Metrics{DP: rng.Float64() * 1000, T: rng.Float64() * 10, JD: rng.Float64(), DI: rng.Float64()}
		samples = append(samples, m)
		targets = append(targets, 5*m.DP*m.JD)
	}
	model, err := FitStepwise(samples, targets, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics{DP: 500, T: 5, JD: 0.5, DI: 0.5}
	if got, want := model.Predict(m), 5*500*0.5; math.Abs(got-want) > 0.05*want {
		t.Fatalf("composite prediction %v, want %v", got, want)
	}
}

func TestFitStepwiseErrors(t *testing.T) {
	if _, err := FitStepwise(nil, []float64{1}, 3, 0.5); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	s := []Metrics{{DP: 1}, {DP: 2}}
	if _, err := FitStepwise(s, []float64{1, 2}, 3, 0.5); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
}

func TestNormalizedGDConvergesOnDrift(t *testing.T) {
	// Start from a fitted model, then shift the underlying relationship;
	// online updates must track the drift.
	rng := numeric.NewRNG(3)
	model := &Model{Selected: []int{0}, Weights: []float64{0, 1}, LearnRate: 0.5} // y ≈ DP
	truth := func(m Metrics) float64 { return 4*m.DP + 7 }
	var lastErr float64
	for i := 0; i < 500; i++ {
		m := Metrics{DP: 1 + rng.Float64()*10}
		y := truth(m)
		lastErr = math.Abs(model.Predict(m) - y)
		model.Update(m, y)
	}
	if lastErr > 2 {
		t.Fatalf("online model did not converge: err %v", lastErr)
	}
}

func TestModelUpdateZeroVectorIsNoop(t *testing.T) {
	m := &Model{Selected: nil, Weights: []float64{1}, LearnRate: 0.5}
	// Intercept design is never zero, so force the degenerate branch via a
	// model whose only inputs vanish.
	zero := &Model{Selected: []int{0}, Weights: []float64{0, 0}, LearnRate: 0.5}
	_ = m
	zeroBefore := append([]float64(nil), zero.Weights...)
	// The design vector includes the intercept 1, so norm > 0; verify a
	// plain update moves weights.
	zero.Update(Metrics{}, 5)
	if zero.Weights[0] == zeroBefore[0] {
		t.Fatal("update with intercept must move weights")
	}
}

func TestOnlineLifecycle(t *testing.T) {
	o := NewOnline(4, 3, 0.5)
	if o.Ready() {
		t.Fatal("ready before any sample")
	}
	truth := func(m Metrics) float64 { return 2 * m.DP }
	rng := numeric.NewRNG(4)
	// Before bootstrap: running-mean predictions.
	o.Observe(Metrics{DP: 10}, 20)
	if got := o.Predict(Metrics{DP: 1000}); got != 20 {
		t.Fatalf("pre-bootstrap predict = %v, want running mean 20", got)
	}
	for i := 0; i < 3; i++ {
		m := Metrics{DP: rng.Float64() * 100, T: rng.Float64()}
		o.Observe(m, truth(m))
	}
	if !o.Ready() {
		t.Fatal("not ready after 4 samples")
	}
	for i := 0; i < 50; i++ {
		m := Metrics{DP: rng.Float64() * 100, T: rng.Float64()}
		o.Observe(m, truth(m))
	}
	m := Metrics{DP: 40}
	if got := o.Predict(m); math.Abs(got-80) > 8 {
		t.Fatalf("online predict = %v, want ~80", got)
	}
}

func TestOnlinePredictNonNegative(t *testing.T) {
	o := NewOnline(2, 1, 0.5)
	o.Observe(Metrics{DP: 10}, 1)
	o.Observe(Metrics{DP: 20}, 0.5)
	// Extrapolating far below the data could go negative; clamp to 0.
	if got := o.Predict(Metrics{DP: 1e6}); got < 0 {
		t.Fatalf("negative prediction %v", got)
	}
}

func TestOnlineDefaults(t *testing.T) {
	o := NewOnline(0, 0, 0)
	if o.bootstrap != 4 || o.maxTerms != 3 {
		t.Fatalf("defaults: %d %d", o.bootstrap, o.maxTerms)
	}
}
