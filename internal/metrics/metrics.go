// Package metrics is a small, dependency-free metrics registry for the
// checkpoint stack: counters, gauges and fixed-bucket histograms with
// Prometheus text exposition. It exists so the hot layers (FSStore group
// commits, the replication client/server, the quorum fan-out, the facade)
// can be observed in production and closed-loop controlled by
// internal/control without importing anything outside the standard library.
//
// Design points, chosen for this codebase's invariants:
//
//   - Instruments are nil-safe: every method on a nil *Counter, *Gauge or
//     *Histogram is a no-op, so instrumented hot paths pay one predictable
//     branch when metrics are disabled instead of growing conditional
//     plumbing.
//   - Histogram bucket boundaries are fixed at registration, so the text
//     exposition is byte-deterministic for a deterministic workload — the
//     property the chaos harness and the golden tests pin.
//   - Registration is get-or-create: registering the same name again with
//     the same type, help and labels returns the existing instrument
//     (several stores can share one registry), while a mismatched
//     re-registration panics — that is a programming error the metricnames
//     analyzer also catches statically.
//   - Exposition is deterministic: families sort by name, series by label
//     values, floats format with strconv 'g' shortest form.
//
// Metric names follow the project convention enforced by the metricnames
// analyzer: snake_case, aic_-prefixed, unit-suffixed (_total, _seconds,
// _bytes, ...). DESIGN.md §14 documents the stable metric surface.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind is the instrument type of one family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// microsecond-to-seconds range the storage and network paths live in.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default size/count buckets (powers of four from 1),
// for batch sizes and byte counts.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// Registry holds a set of metric families and renders them in Prometheus
// text exposition format. The zero value is not usable; call NewRegistry.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its labelled series.
type family struct {
	name    string
	help    string
	typ     kind
	labels  []string  // label names, fixed at registration
	buckets []float64 // histogram upper bounds, fixed at registration

	mu     sync.Mutex
	series map[string]*series // label-value key → series
}

// series is one (labelset → value) time series.
type series struct {
	labelVals []string

	// bits holds the float64 value for counters and gauges.
	bits atomic.Uint64

	// Histogram state: cumulative bucket counts (one per bound, +Inf
	// implicit via count), total count, and the observation sum.
	bucketCounts []atomic.Uint64
	count        atomic.Uint64
	sumBits      atomic.Uint64
}

func (r *Registry) register(name, help string, typ kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns (creating if needed) the series for the label values.
func (f *family) get(labelVals []string) *series {
	if f == nil {
		return nil
	}
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		if f.typ == kindHistogram {
			s.bucketCounts = make([]atomic.Uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Histogram counts observations into fixed buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.s.bucketCounts[i].Add(1)
			break
		}
	}
	h.s.count.Add(1)
	addFloat(&h.s.sumBits, v)
}

// Snapshot returns a point-in-time copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.s == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.f.buckets...),
		Buckets: make([]uint64, len(h.f.buckets)),
		Count:   h.s.count.Load(),
		Sum:     math.Float64frombits(h.s.sumBits.Load()),
	}
	for i := range h.s.bucketCounts {
		snap.Buckets[i] = h.s.bucketCounts[i].Load()
	}
	return snap
}

// HistogramSnapshot is a consistent-enough copy of one histogram series:
// per-bucket (non-cumulative) counts aligned with Bounds, the total
// observation count (including values above the last bound) and their sum.
type HistogramSnapshot struct {
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// Sub returns the windowed difference cur − prev (observations recorded
// between the two snapshots). Counters only grow, so a negative difference
// means the snapshots are unrelated; Sub clamps at zero.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:  append([]float64(nil), s.Bounds...),
		Buckets: make([]uint64, len(s.Buckets)),
		Count:   s.Count,
		Sum:     s.Sum - prev.Sum,
	}
	if prev.Count <= s.Count {
		out.Count = s.Count - prev.Count
	}
	for i := range s.Buckets {
		if i < len(prev.Buckets) && prev.Buckets[i] <= s.Buckets[i] {
			out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		} else {
			out.Buckets[i] = s.Buckets[i]
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the snapshot's
// observations by linear attribution to bucket upper bounds. Observations
// above the last bound report the last bound (the estimate saturates).
// A snapshot with no observations reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the snapshot's mean observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	if f == nil {
		return nil
	}
	return &Counter{s: f.get(nil)}
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	if f == nil {
		return nil
	}
	return &Gauge{s: f.get(nil)}
}

// Histogram registers (or finds) an unlabelled histogram with the given
// bucket upper bounds (nil selects DefBuckets). Bounds must ascend.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, checkBuckets(name, buckets))
	if f == nil {
		return nil
	}
	return &Histogram{f: f, s: f.get(nil)}
}

// CounterVec registers (or finds) a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, kindCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (in declaration
// order), creating the series on first use.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.get(labelVals)}
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, kindGauge, labels, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.get(labelVals)}
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family (nil buckets selects
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, kindHistogram, labels, checkBuckets(name, buckets))
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{f: v.f, s: v.f.get(labelVals)}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets must strictly ascend", name))
		}
	}
	return buckets
}

// Value returns the current value of a counter or gauge series by name and
// label values; ok is false when the family or series does not exist. The
// control collector reads gauges through this without holding instrument
// handles.
func (r *Registry) Value(name string, labelVals ...string) (float64, bool) {
	f := r.lookup(name)
	if f == nil || f.typ == kindHistogram {
		return 0, false
	}
	s := f.find(labelVals)
	if s == nil {
		return 0, false
	}
	return math.Float64frombits(s.bits.Load()), true
}

// HistogramSnapshot returns a snapshot of a histogram series by name and
// label values; ok is false when it does not exist.
func (r *Registry) HistogramSnapshot(name string, labelVals ...string) (HistogramSnapshot, bool) {
	f := r.lookup(name)
	if f == nil || f.typ != kindHistogram {
		return HistogramSnapshot{}, false
	}
	s := f.find(labelVals)
	if s == nil {
		return HistogramSnapshot{}, false
	}
	return (&Histogram{f: f, s: s}).Snapshot(), true
}

func (r *Registry) lookup(name string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.families[name]
}

// find returns the series for the label values without creating it.
func (f *family) find(labelVals []string) *series {
	key := strings.Join(labelVals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[key]
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sort by name, series
// by label values.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text returns the exposition as a string (the test and chaos-transcript
// convenience form of WriteText).
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, f.series[k])
	}
	f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range ordered {
		switch f.typ {
		case kindCounter, kindGauge:
			v := math.Float64frombits(s.bits.Load())
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, ""), formatFloat(v))
		case kindHistogram:
			// Per the format, bucket counts are cumulative and le is a label.
			var cum uint64
			for i, ub := range f.buckets {
				cum += s.bucketCounts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, formatFloat(ub)), cum)
			}
			count := s.count.Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "+Inf"), count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelVals, ""),
				formatFloat(math.Float64frombits(s.sumBits.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, ""), count)
		}
	}
}

// labelString renders {k="v",...}, appending le when non-empty (histogram
// buckets); it returns "" for an empty label set.
func labelString(names, vals []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(vals[i]))
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le=%q`, le)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// addFloat atomically adds delta to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Handler returns an http.Handler serving the text exposition — the body
// cmd/aicd mounts at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
