package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter and one labelled counter from
// many goroutines; run under -race this doubles as the data-race proof.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aic_test_ops_total", "ops")
	vec := r.CounterVec("aic_test_labelled_ops_total", "labelled ops", "peer")
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With("a").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %v", got, workers*perWorker)
	}
	if got, ok := r.Value("aic_test_labelled_ops_total", "a"); !ok || got != 2*workers*perWorker {
		t.Fatalf("labelled counter = %v ok=%v, want %v", got, ok, 2*workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("aic_test_depth", "queue depth")
	g.Set(5)
	g.Add(3)
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after balanced inc/dec = %v, want 7", got)
	}
}

// TestHistogramBucketEdges pins the boundary convention: v <= bound lands
// in the bucket, v just above falls through to the next.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aic_test_lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Buckets are non-cumulative in the snapshot: le=1 gets {0.5, 1},
	// le=2 gets {1.0000001, 2}, le=4 gets {3, 4}, and {5, 100} overflow.
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (snap %+v)", i, snap.Buckets[i], w, snap)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if want := 0.5 + 1 + 1.0000001 + 2 + 3 + 4 + 5 + 100; math.Abs(snap.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", snap.Sum, want)
	}
}

func TestHistogramSnapshotSubAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aic_test_q_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // le=0.001
	}
	prev := h.Snapshot()
	for i := 0; i < 90; i++ {
		h.Observe(0.05) // le=0.1
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // le=1
	}
	win := h.Snapshot().Sub(prev)
	if win.Count != 100 {
		t.Fatalf("windowed count = %d, want 100", win.Count)
	}
	// p50 of the window sits in the 0.1 bucket, p99 in the 1 bucket; the
	// pre-window fast observations must not dilute the estimate.
	if got := win.Quantile(0.5); got != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", got)
	}
	if got := win.Quantile(0.99); got != 1 {
		t.Fatalf("p99 = %v, want 1", got)
	}
	if empty := (HistogramSnapshot{}); empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
}

// TestWriteTextGolden pins the exposition format byte-for-byte: family
// ordering, label ordering, cumulative buckets, +Inf, _sum/_count.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("aic_z_ops_total", "last family by name").Add(3)
	g := r.GaugeVec("aic_a_depth", "first family", "proc")
	g.With("p2").Set(2)
	g.With("p1").Set(1.5)
	h := r.HistogramVec("aic_m_lat_seconds", "mid family", []float64{0.5, 2}, "peer")
	h.With("x").Observe(0.25)
	h.With("x").Observe(0.75)
	h.With("x").Observe(9)

	const want = `# HELP aic_a_depth first family
# TYPE aic_a_depth gauge
aic_a_depth{proc="p1"} 1.5
aic_a_depth{proc="p2"} 2
# HELP aic_m_lat_seconds mid family
# TYPE aic_m_lat_seconds histogram
aic_m_lat_seconds_bucket{peer="x",le="0.5"} 1
aic_m_lat_seconds_bucket{peer="x",le="2"} 2
aic_m_lat_seconds_bucket{peer="x",le="+Inf"} 3
aic_m_lat_seconds_sum{peer="x"} 10
aic_m_lat_seconds_count{peer="x"} 3
# HELP aic_z_ops_total last family by name
# TYPE aic_z_ops_total counter
aic_z_ops_total 3
`
	if got := r.Text(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Determinism: a second render must be byte-identical.
	if again := r.Text(); again != r.Text() {
		t.Fatal("exposition not deterministic across renders")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("aic_test_nil_total", "n")
	g := r.Gauge("aic_test_nil_depth", "n")
	h := r.Histogram("aic_test_nil_seconds", "n", nil)
	cv := r.CounterVec("aic_test_nilv_total", "n", "l")
	c.Inc()
	g.Set(1)
	h.Observe(1)
	cv.With("x").Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil-registry instruments must be inert")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
}

func TestRegisterIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("aic_test_same_total", "same")
	b := r.Counter("aic_test_same_total", "same")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registration must share state, got %v", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on re-registration must panic")
		}
	}()
	r.Gauge("aic_test_same_total", "same")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("aic_test_esc_total", "esc", "path").With(`a\b` + "\n").Inc()
	text := r.Text()
	if !strings.Contains(text, `path="a\\b\n"`) {
		t.Fatalf("label not escaped: %q", text)
	}
}
