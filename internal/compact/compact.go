// Package compact is the online delta-chain compactor: a background
// worker that rewrites long chains into fresh full anchors without
// pausing writers, enforcing a keep-k retention policy that bounds
// worst-case restore (rewind) cost, and garbage-collecting the chunk
// store behind dedup-enabled FSStores.
//
// The protocol is copy-then-flip. The copy phase runs with no locks held:
// read the chain, replay its prefix with recovery.RestoreLatestGood, and
// synthesize an equivalent full checkpoint (ckpt.FullFromImage) at the
// prefix's last element. The flip phase is the store's ReplaceAnchor —
// one brief critical section under the same group-commit token writers
// use, which re-verifies the prefix is unchanged and either installs the
// anchor or reports storage.ErrCompactRaced, in which case the compactor
// simply moves on (the next pass sees the fresh chain). Appends landing
// during the copy phase are untouched: they sit above the anchor seq.
//
// A compaction never changes what any committed seq restores to: the
// synthesized anchor restores to exactly the prefix's replayed state, and
// a chain whose prefix does not replay cleanly (corrupt, gapped or
// missing elements) is skipped — folding damage into an anchor would
// launder it into "good" state.
package compact

import (
	"context"
	"errors"
	"sort"
	"time"

	"aic/internal/ckpt"
	"aic/internal/metrics"
	"aic/internal/recovery"
	"aic/internal/storage"
)

// Store is what the compactor needs from a checkpoint store: the base
// contract plus the anchor flip. *storage.FSStore and *storage.LevelStore
// both qualify.
type Store interface {
	storage.Store
	storage.AnchorReplacer
}

// chunkGC is the optional GC hook a dedup-enabled FSStore provides.
type chunkGC interface {
	GCChunks(ctx context.Context) (int, int64, error)
}

// Config tunes the compactor. The zero value compacts chains longer than
// DefaultMaxChain down to DefaultKeep elements and garbage-collects
// unreferenced chunks after each pass.
type Config struct {
	// MaxChain is the chain length that triggers compaction; chains at or
	// below it are left alone. Default 32.
	MaxChain int
	// Keep is how many newest elements survive a compaction (the keep-k
	// retention policy): the chain becomes a fresh full anchor plus the
	// Keep-1 elements above it, so a restore rewinds at most Keep-1
	// deltas. Default 8; clamped to [1, MaxChain].
	Keep int
	// DisableGC skips the chunk-store garbage collection after each pass.
	DisableGC bool
	// Metrics instruments the compactor when non-nil.
	Metrics *metrics.Registry
}

// Compactor defaults.
const (
	DefaultMaxChain = 32
	DefaultKeep     = 8
)

func (c Config) withDefaults() Config {
	if c.MaxChain <= 0 {
		c.MaxChain = DefaultMaxChain
	}
	if c.Keep <= 0 {
		c.Keep = DefaultKeep
	}
	if c.Keep > c.MaxChain {
		c.Keep = c.MaxChain
	}
	return c
}

// Report summarizes one compaction pass.
type Report struct {
	// Procs is how many chains the pass examined.
	Procs int
	// Compacted lists the procs whose chains were rewritten.
	Compacted []string
	// Raced lists the procs whose flip lost to a concurrent mutation
	// (benign; retried next pass).
	Raced []string
	// Skipped lists procs whose prefix did not replay cleanly and were
	// left for Scrub/restore tooling.
	Skipped []string
	// ElemsDropped counts chain elements folded away.
	ElemsDropped int
	// ChunksReclaimed / BytesReclaimed report the chunk GC that ran after
	// the pass (zero when GC is disabled or the store has no chunk store).
	ChunksReclaimed int
	BytesReclaimed  int64
}

// Compactor drives chain compaction over one store. Safe for concurrent
// use with writers; run one Compactor per store.
type Compactor struct {
	store Store
	cfg   Config
	met   *compactMetrics
}

type compactMetrics struct {
	runs      *metrics.Counter   // aic_compact_runs_total
	rewritten *metrics.Counter   // aic_compact_chains_rewritten_total
	raced     *metrics.Counter   // aic_compact_raced_total
	dropped   *metrics.Counter   // aic_compact_elems_dropped_total
	dur       *metrics.Histogram // aic_compact_pass_duration_seconds
}

func newCompactMetrics(reg *metrics.Registry) *compactMetrics {
	if reg == nil {
		return nil
	}
	return &compactMetrics{
		runs: reg.Counter("aic_compact_runs_total",
			"Compaction passes started."),
		rewritten: reg.Counter("aic_compact_chains_rewritten_total",
			"Chains folded into a fresh full anchor."),
		raced: reg.Counter("aic_compact_raced_total",
			"Anchor flips abandoned because a writer mutated the chain first."),
		dropped: reg.Counter("aic_compact_elems_dropped_total",
			"Chain elements folded away by compaction."),
		dur: reg.Histogram("aic_compact_pass_duration_seconds",
			"Wall time of one full compaction pass.", nil),
	}
}

// New builds a compactor over store.
func New(store Store, cfg Config) *Compactor {
	cfg = cfg.withDefaults()
	return &Compactor{store: store, cfg: cfg, met: newCompactMetrics(cfg.Metrics)}
}

// RunOnce executes one compaction pass over every chain in the store,
// then (unless disabled) garbage-collects unreferenced chunks.
func (c *Compactor) RunOnce(ctx context.Context) (*Report, error) {
	t0 := time.Now()
	if c.met != nil {
		c.met.runs.Inc()
	}
	rep := &Report{}
	procs, err := c.store.List(ctx)
	if err != nil {
		return rep, err
	}
	for _, proc := range procs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Procs++
		dropped, err := c.CompactProc(ctx, proc)
		switch {
		case errors.Is(err, storage.ErrCompactRaced):
			rep.Raced = append(rep.Raced, proc)
			if c.met != nil {
				c.met.raced.Inc()
			}
		case err != nil:
			rep.Skipped = append(rep.Skipped, proc)
		case dropped > 0:
			rep.Compacted = append(rep.Compacted, proc)
			rep.ElemsDropped += dropped
			if c.met != nil {
				c.met.rewritten.Inc()
				c.met.dropped.Add(float64(dropped))
			}
		}
	}
	if !c.cfg.DisableGC {
		if gc, ok := c.store.(chunkGC); ok {
			n, b, err := gc.GCChunks(ctx)
			if err != nil {
				return rep, err
			}
			rep.ChunksReclaimed, rep.BytesReclaimed = n, b
		}
	}
	if c.met != nil {
		c.met.dur.Observe(time.Since(t0).Seconds())
	}
	return rep, nil
}

// errSkip marks chains whose prefix cannot be folded safely this pass.
var errSkip = errors.New("compact: chain prefix does not replay cleanly; skipped")

// CompactProc compacts one chain if it exceeds MaxChain, returning how
// many elements were folded away (0 = nothing to do). A flip lost to a
// concurrent writer returns storage.ErrCompactRaced; a prefix that does
// not replay cleanly returns an error and leaves the chain for Scrub.
func (c *Compactor) CompactProc(ctx context.Context, proc string) (int, error) {
	chain, missing, err := c.store.Get(ctx, proc)
	if err != nil {
		return 0, err
	}
	if len(chain) <= c.cfg.MaxChain {
		return 0, nil
	}
	sort.SliceStable(chain, func(i, j int) bool { return chain[i].Seq < chain[j].Seq })
	cut := len(chain) - c.cfg.Keep // index of the new anchor element
	if cut < 1 {
		return 0, nil
	}
	anchor := chain[cut]
	for _, seq := range missing {
		if seq <= anchor.Seq {
			return 0, errSkip
		}
	}
	prefix := chain[:cut+1]
	drop := make([]int, cut)
	for i, s := range prefix[:cut] {
		drop[i] = s.Seq
	}

	// Copy phase, no locks: replay the prefix and demand it reaches the
	// cut intact. Elements RestoreLatestGood discards as stale (superseded
	// by a newer full inside the prefix) fold away harmlessly — they do
	// not contribute to any restore today — but a corrupt element or a
	// replay stopping short of the cut means the synthesized anchor would
	// restore differently than the chain does, which compaction must
	// never cause; such chains are left for Scrub.
	as, rep, err := recovery.RestoreLatestGood(prefix)
	if err != nil {
		return 0, errSkip
	}
	if rep.LastSeq != anchor.Seq || len(rep.Corrupt) != 0 {
		return 0, errSkip
	}
	full := ckpt.FullFromImage(as, anchor.Seq, rep.CPUState).Encode()

	// Flip phase: one critical section under the chain's commit token.
	if err := c.store.ReplaceAnchor(ctx, proc, anchor.Seq, full, drop); err != nil {
		return 0, err
	}
	return cut, nil
}

// Run drives RunOnce every interval until ctx is cancelled, returning
// ctx.Err(). Pass errors are absorbed (the next tick retries); it is the
// long-running daemon loop cmd/aicd and the facade expose.
func (c *Compactor) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_, _ = c.RunOnce(ctx)
		}
	}
}
