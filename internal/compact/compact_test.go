package compact

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"aic/internal/ckpt"
	"aic/internal/memsim"
	"aic/internal/metrics"
	"aic/internal/numeric"
	"aic/internal/recovery"
	"aic/internal/storage"
)

const testPageSize = 512

// chainWriter drives a memsim address space and a ckpt builder so tests
// can append realistic full+delta chains to any store and keep the
// reference image the chain must restore to.
type chainWriter struct {
	as  *memsim.AddressSpace
	b   *ckpt.Builder
	rng *numeric.RNG
	buf []byte
}

func newChainWriter(seed uint64) *chainWriter {
	w := &chainWriter{
		as:  memsim.New(testPageSize),
		b:   ckpt.NewBuilder(testPageSize, 0, 24),
		rng: numeric.NewRNG(seed),
		buf: make([]byte, testPageSize),
	}
	for i := uint64(0); i < 12; i++ {
		w.rng.Bytes(w.buf)
		w.as.Write(i, 0, w.buf, 0)
	}
	return w
}

// append writes the next element (seq 0 is a full, later seqs deltas)
// into the store and returns the seq it committed.
func (w *chainWriter) append(ctx context.Context, t *testing.T, store storage.Store, proc string) int {
	t.Helper()
	var c *ckpt.Checkpoint
	if w.b.Seq() == 0 && len(w.b.PrevPage(0)) == 0 {
		c = w.b.FullCheckpoint(w.as)
	} else {
		w.rng.Bytes(w.buf[:64])
		w.as.Write(uint64(w.rng.Intn(12)), 0, w.buf[:64], 1)
		c, _ = w.b.DeltaCheckpoint(w.as)
	}
	if err := store.Put(ctx, proc, c.Seq, c.Encode()); err != nil {
		t.Fatal(err)
	}
	return c.Seq
}

func (w *chainWriter) grow(ctx context.Context, t *testing.T, store storage.Store, proc string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w.append(ctx, t, store, proc)
	}
}

func restoreState(t *testing.T, ctx context.Context, store storage.Store, proc string) (*memsim.AddressSpace, *recovery.GoodReport) {
	t.Helper()
	chain, missing, err := store.Get(ctx, proc)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing seqs %v", missing)
	}
	as, rep, err := recovery.RestoreLatestGood(chain)
	if err != nil {
		t.Fatal(err)
	}
	return as, rep
}

func newDedupStore(t *testing.T) *storage.FSStore {
	t.Helper()
	fs, err := storage.NewFSStore(t.TempDir(), storage.Target{Name: "compact"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := storage.DedupConfig{MinChunk: 64, AvgChunk: 256, MaxChunk: 1024, MinPayload: 1}
	if err := fs.EnableDedup(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestCompactDifferentialRestore is the core equivalence proof: restoring
// after compaction yields byte-for-byte the same memory image and CPU
// state as restoring the original long chain.
func TestCompactDifferentialRestore(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	w := newChainWriter(1)
	w.b.SetCPUState(bytes.Repeat([]byte{0xAB}, 24))
	w.grow(ctx, t, fs, "p", 41) // full + 40 deltas, over MaxChain

	before, repBefore := restoreState(t, ctx, fs, "p")

	reg := metrics.NewRegistry()
	c := New(fs, Config{MaxChain: 32, Keep: 8, Metrics: reg})
	rep, err := c.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compacted) != 1 || rep.Compacted[0] != "p" {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ElemsDropped != 41-8 {
		t.Fatalf("dropped %d elements, want %d", rep.ElemsDropped, 41-8)
	}

	chain, missing, err := fs.Get(ctx, "p")
	if err != nil || len(missing) != 0 {
		t.Fatalf("Get: %v missing=%v", err, missing)
	}
	if len(chain) != 8 {
		t.Fatalf("post-compaction chain length %d, want keep-k = 8", len(chain))
	}
	after, repAfter := restoreState(t, ctx, fs, "p")
	if !before.Equal(after) {
		t.Fatal("memory image differs after compaction")
	}
	if repBefore.LastSeq != repAfter.LastSeq {
		t.Fatalf("LastSeq %d vs %d", repBefore.LastSeq, repAfter.LastSeq)
	}
	if !bytes.Equal(repBefore.CPUState, repAfter.CPUState) {
		t.Fatal("CPU state differs after compaction")
	}
	// The store stays clean and appendable: grow past the threshold again
	// and compact a second time.
	w.grow(ctx, t, fs, "p", 30)
	before2, _ := restoreState(t, ctx, fs, "p")
	if _, err := c.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	after2, _ := restoreState(t, ctx, fs, "p")
	if !before2.Equal(after2) {
		t.Fatal("second compaction changed restore state")
	}
	if v, ok := reg.Value("aic_compact_chains_rewritten_total"); !ok || v < 2 {
		t.Fatalf("aic_compact_chains_rewritten_total = %v, %v", v, ok)
	}
}

func TestCompactNoopBelowThreshold(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	w := newChainWriter(2)
	w.grow(ctx, t, fs, "p", 10)
	c := New(fs, Config{MaxChain: 32, Keep: 8})
	rep, err := c.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compacted)+len(rep.Raced)+len(rep.Skipped) != 0 {
		t.Fatalf("short chain touched: %+v", rep)
	}
	chain, _, err := fs.Get(ctx, "p")
	if err != nil || len(chain) != 10 {
		t.Fatalf("chain disturbed: len=%d err=%v", len(chain), err)
	}
}

func TestCompactLevelStore(t *testing.T) {
	ctx := context.Background()
	ls := storage.NewLevelStore(storage.Target{Name: "mem"})
	w := newChainWriter(3)
	w.grow(ctx, t, ls, "p", 20)
	before, _ := restoreState(t, ctx, ls, "p")
	c := New(ls, Config{MaxChain: 12, Keep: 4})
	rep, err := c.RunOnce(ctx)
	if err != nil || len(rep.Compacted) != 1 {
		t.Fatalf("report %+v err=%v", rep, err)
	}
	chain, _, err := ls.Get(ctx, "p")
	if err != nil || len(chain) != 4 {
		t.Fatalf("len=%d err=%v", len(chain), err)
	}
	after, _ := restoreState(t, ctx, ls, "p")
	if !before.Equal(after) {
		t.Fatal("LevelStore compaction changed restore state")
	}
}

// racingStore loses every flip: it mutates the chain between the
// compactor's copy phase and the underlying ReplaceAnchor, the way a
// concurrent Truncate would.
type racingStore struct {
	Store
	t *testing.T
}

func (r *racingStore) ReplaceAnchor(ctx context.Context, proc string, anchorSeq int, full []byte, drop []int) error {
	if err := r.Store.Truncate(ctx, proc, 2); err != nil {
		r.t.Error(err)
	}
	return r.Store.ReplaceAnchor(ctx, proc, anchorSeq, full, drop)
}

func TestCompactRacedFlipIsBenign(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	w := newChainWriter(4)
	w.grow(ctx, t, fs, "p", 20)
	c := New(&racingStore{Store: fs, t: t}, Config{MaxChain: 12, Keep: 4})
	rep, err := c.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Raced) != 1 || rep.Raced[0] != "p" || rep.ElemsDropped != 0 {
		t.Fatalf("report %+v, want the flip classified as raced", rep)
	}
	// The racing truncate won; the store reflects it and nothing else.
	chain, missing, err := fs.Get(ctx, "p")
	if err != nil || len(missing) != 0 || len(chain) != 18 {
		t.Fatalf("len=%d missing=%v err=%v", len(chain), missing, err)
	}
}

// corruptingStore serves the chain with one element bit-flipped, the way
// a store with silent media damage would.
type corruptingStore struct {
	Store
	seq int
}

func (cs *corruptingStore) Get(ctx context.Context, proc string) ([]storage.Stored, []int, error) {
	chain, missing, err := cs.Store.Get(ctx, proc)
	for i := range chain {
		if chain[i].Seq == cs.seq {
			bad := append([]byte(nil), chain[i].Data...)
			bad[len(bad)/2] ^= 0xFF
			chain[i].Data = bad
		}
	}
	return chain, missing, err
}

// TestCompactSkipsDamagedPrefix: a corrupt element below the cut must
// abort the fold — compaction never launders damage into a fresh anchor.
func TestCompactSkipsDamagedPrefix(t *testing.T) {
	ctx := context.Background()
	ls := storage.NewLevelStore(storage.Target{Name: "mem"})
	w := newChainWriter(5)
	w.grow(ctx, t, ls, "p", 20)
	// Seq 9 sits inside the would-be folded prefix.
	c := New(&corruptingStore{Store: ls, seq: 9}, Config{MaxChain: 12, Keep: 4})
	rep, err := c.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "p" {
		t.Fatalf("report %+v, want damaged chain skipped", rep)
	}
	if chain, _, _ := ls.Get(ctx, "p"); len(chain) != 20 {
		t.Fatalf("damaged chain mutated: len=%d", len(chain))
	}
}

// TestCompactGCReclaimsFoldedChunks: folding a dedup'd chain frees the
// prefix's recipes; the pass's GC sweep reclaims their now-unreferenced
// chunks while every surviving element still resolves.
func TestCompactGCReclaimsFoldedChunks(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	w := newChainWriter(6)
	w.grow(ctx, t, fs, "p", 30)
	c := New(fs, Config{MaxChain: 16, Keep: 4})
	rep, err := c.RunOnce(ctx)
	if err != nil || len(rep.Compacted) != 1 {
		t.Fatalf("report %+v err=%v", rep, err)
	}
	if rep.ChunksReclaimed == 0 || rep.BytesReclaimed == 0 {
		t.Fatalf("GC reclaimed nothing: %+v", rep)
	}
	if scrub, err := fs.Scrub(ctx, "p", false); err != nil || !scrub.Clean() {
		t.Fatalf("post-compaction scrub: %+v err=%v", scrub, err)
	}
	st, err := fs.DedupStats(ctx)
	if err != nil || st.Chunks == 0 {
		t.Fatalf("stats %+v err=%v", st, err)
	}
}

// TestCompactConcurrentAppends races a compaction loop against a writer
// appending to the same chain: every acknowledged append must survive,
// and the final chain must restore to the writer's final image.
func TestCompactConcurrentAppends(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	w := newChainWriter(7)
	w.grow(ctx, t, fs, "p", 20)

	c := New(fs, Config{MaxChain: 12, Keep: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := c.RunOnce(ctx); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	var lastSeq int
	for i := 0; i < 40; i++ {
		lastSeq = w.append(ctx, t, fs, "p")
	}
	close(stop)
	wg.Wait()

	as, rep := restoreState(t, ctx, fs, "p")
	if rep.LastSeq != lastSeq {
		t.Fatalf("restore reached seq %d, writer committed through %d", rep.LastSeq, lastSeq)
	}
	if !as.Equal(w.as) {
		t.Fatal("final restore does not match the writer's live image")
	}
	if scrub, err := fs.Scrub(ctx, "p", false); err != nil || !scrub.Clean() {
		t.Fatalf("scrub after racing compaction: %+v err=%v", scrub, err)
	}
}

func TestCompactManyProcs(t *testing.T) {
	ctx := context.Background()
	fs := newDedupStore(t)
	for p := 0; p < 3; p++ {
		w := newChainWriter(uint64(10 + p))
		w.grow(ctx, t, fs, fmt.Sprintf("p%d", p), 18)
	}
	c := New(fs, Config{MaxChain: 10, Keep: 5})
	rep, err := c.RunOnce(ctx)
	if err != nil || rep.Procs != 3 || len(rep.Compacted) != 3 {
		t.Fatalf("report %+v err=%v", rep, err)
	}
	for p := 0; p < 3; p++ {
		chain, missing, err := fs.Get(ctx, fmt.Sprintf("p%d", p))
		if err != nil || len(missing) != 0 || len(chain) != 5 {
			t.Fatalf("p%d: len=%d missing=%v err=%v", p, len(chain), missing, err)
		}
	}
}

func TestCompactRunHonorsContext(t *testing.T) {
	fs := newDedupStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(fs, Config{})
	if err := c.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}
