package workload

import "fmt"

// Benchmark footprints in 4-KiB pages. The paper's processes occupy up to
// 1 GB; the simulation scales footprints down (the system model's byte
// rates scale identically — see storage.BenchSystem) while preserving each
// benchmark's relative size and behaviour. Dirty rates are tuned so that a
// run spans several checkpoint intervals under the scaled Coastal remote
// bandwidth, keeping the adaptive decision problem non-degenerate.
const (
	bzipPages    = 1024 // 4 MiB: moving block-compression window
	sjengPages   = 2048 // 8 MiB: transposition table
	libqPages    = 1024 // 4 MiB: quantum register bands
	milcPages    = 4096 // 16 MiB: QCD lattice
	lbmPages     = 4096 // 16 MiB: fluid lattice, streaming
	sphinxPages  = 256  // 1 MiB: acoustic model working set
	refFootprint = milcPages
)

// ReferenceFootprintPages is the footprint the benchmark system model is
// calibrated against (the largest benchmark, standing in for the paper's
// 1-GB processes).
const ReferenceFootprintPages = refFootprint

// Bzip2 models block compression: bursts that sweep a moving window with
// mostly-new (compressed, high-entropy) output, separated by low-activity
// bookkeeping phases — moderate compressibility with visible swings.
func Bzip2(seed uint64) *Synthetic {
	return NewSynthetic("bzip2", 152, bzipPages, seed, []Phase{
		{Duration: 6, Rate: 60, RegionLo: 0, RegionHi: bzipPages, Pattern: Sweep, Mode: Scramble, Fraction: 0.6},
		{Duration: 4, Rate: 20, RegionLo: 0, RegionHi: bzipPages / 8, Pattern: Random, Mode: Tick},
	})
}

// Sjeng models game-tree search over a large transposition table: deep
// search phases scramble random table entries, then quiescence/unwind
// phases settle entries back toward canonical values — producing the wide
// delta-latency/size swings of Fig. 2 (a 95% drop within seconds).
func Sjeng(seed uint64) *Synthetic {
	return NewSynthetic("sjeng", 661, sjengPages, seed, []Phase{
		{Duration: 16, Rate: 38, RegionLo: 0, RegionHi: sjengPages, Pattern: Random, Mode: Scramble, Fraction: 0.55},
		{Duration: 14, Rate: 55, RegionLo: 0, RegionHi: sjengPages, Pattern: Random, Mode: Settle, Fraction: 1.0},
		{Duration: 6, Rate: 10, RegionLo: 0, RegionHi: sjengPages / 16, Pattern: Hotspot, Mode: Tick},
	})
}

// Libquantum models quantum register simulation: banded sweeps whose
// updates rewrite about half of each touched page, with short control
// phases.
func Libquantum(seed uint64) *Synthetic {
	return NewSynthetic("libquantum", 846, libqPages, seed, []Phase{
		{Duration: 10, Rate: 25, RegionLo: 0, RegionHi: libqPages / 2, Pattern: Sweep, Mode: Scramble, Fraction: 0.5},
		{Duration: 10, Rate: 25, RegionLo: libqPages / 2, RegionHi: libqPages, Pattern: Sweep, Mode: Scramble, Fraction: 0.5},
		{Duration: 5, Rate: 10, RegionLo: 0, RegionHi: libqPages / 8, Pattern: Random, Mode: Tick},
	})
}

// Milc models lattice QCD: sweeps that rewrite most of every touched page
// with fresh values — large, poorly compressible deltas (ratio ≈ 0.8,
// the paper's hardest case and AIC's biggest win in Fig. 11) — with the
// sweep intensity alternating between full-lattice update phases and
// lighter measurement phases.
func Milc(seed uint64) *Synthetic {
	return NewSynthetic("milc", 527, milcPages, seed, []Phase{
		{Duration: 20, Rate: 30, RegionLo: 0, RegionHi: milcPages, Pattern: Sweep, Mode: Scramble, Fraction: 0.74},
		{Duration: 20, Rate: 8, RegionLo: 0, RegionHi: milcPages / 4, Pattern: Random, Mode: Scramble, Fraction: 0.74},
	})
}

// Lbm models the lattice-Boltzmann stream/collide kernel: a steady
// streaming sweep rewriting ~90% of each page — the least compressible
// workload, with rate modulation between collision-heavy and
// propagation-heavy stretches.
func Lbm(seed uint64) *Synthetic {
	return NewSynthetic("lbm", 462, lbmPages, seed, []Phase{
		{Duration: 20, Rate: 25, RegionLo: 0, RegionHi: lbmPages, Pattern: Sweep, Mode: Scramble, Fraction: 0.9},
		{Duration: 20, Rate: 10, RegionLo: 0, RegionHi: lbmPages, Pattern: Sweep, Mode: Scramble, Fraction: 0.9},
	})
}

// Sphinx3 models speech decoding: a small hot working set with light,
// localized updates — tiny deltas (order half-MB in the paper) that
// compress extremely well and leave adaptivity little to gain.
func Sphinx3(seed uint64) *Synthetic {
	return NewSynthetic("sphinx3", 749, sphinxPages, seed, []Phase{
		{Duration: 12, Rate: 25, RegionLo: 0, RegionHi: sphinxPages, Pattern: Hotspot, Mode: Scramble, Fraction: 0.14},
		{Duration: 8, Rate: 40, RegionLo: 0, RegionHi: sphinxPages / 4, Pattern: Random, Mode: Tick},
	})
}

// All returns the six Table 3 benchmarks, seeded deterministically from
// seed.
func All(seed uint64) []Program {
	return []Program{
		Bzip2(seed + 1),
		Sjeng(seed + 2),
		Libquantum(seed + 3),
		Milc(seed + 4),
		Lbm(seed + 5),
		Sphinx3(seed + 6),
	}
}

// ByName returns the named benchmark or an error listing the valid names.
func ByName(name string, seed uint64) (Program, error) {
	switch name {
	case "bzip2":
		return Bzip2(seed), nil
	case "sjeng":
		return Sjeng(seed), nil
	case "libquantum":
		return Libquantum(seed), nil
	case "milc":
		return Milc(seed), nil
	case "lbm":
		return Lbm(seed), nil
	case "sphinx3":
		return Sphinx3(seed), nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (want bzip2|sjeng|libquantum|milc|lbm|sphinx3)", name)
}
