package workload

import (
	"encoding/binary"
	"fmt"
)

// Execution-state serialization: the paper's checkpoints carry CPU state
// (registers, linkage) alongside memory pages; the simulation's equivalent
// is the program generator's internal state (RNG, sweep position, rate
// carry). Saving it into the checkpoint's CPU-state blob lets a restored
// process resume producing the exact same write stream — the property the
// fault-injection simulator verifies.

const stateMagic = "AICWSTA1"

// SaveState serializes the program's execution state.
func (s *Synthetic) SaveState() []byte {
	out := make([]byte, 0, 64)
	out = append(out, stateMagic...)
	st := s.rng.State()
	for _, w := range st {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(s.sweepPos))
	out = binary.LittleEndian.AppendUint64(out, uint64(int64(s.carry*1e12)))
	return out
}

// LoadState restores execution state produced by SaveState on a program
// with the same configuration.
func (s *Synthetic) LoadState(data []byte) error {
	const want = len(stateMagic) + 4*8 + 8 + 8
	if len(data) != want || string(data[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("workload: malformed state blob (%d bytes)", len(data))
	}
	p := data[len(stateMagic):]
	var st [4]uint64
	for i := range st {
		st[i] = binary.LittleEndian.Uint64(p)
		p = p[8:]
	}
	s.rng.SetState(st)
	s.sweepPos = int(binary.LittleEndian.Uint64(p))
	p = p[8:]
	s.carry = float64(int64(binary.LittleEndian.Uint64(p))) / 1e12
	return nil
}

// Stateful is implemented by programs whose execution state can be
// checkpointed alongside their memory image.
type Stateful interface {
	Program
	SaveState() []byte
	LoadState([]byte) error
}

var _ Stateful = (*Synthetic)(nil)
