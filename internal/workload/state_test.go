package workload

import (
	"testing"

	"aic/internal/memsim"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	a := Sjeng(3)
	asA := memsim.New(0)
	a.Init(asA)
	for now := 0.0; now < 25; now++ {
		a.Step(asA, now, 1)
	}
	blob := a.SaveState()

	// A twin resumes from the blob and must produce the identical write
	// stream from here on.
	b := Sjeng(3)
	asB := asA.Clone()
	b.Init(memsim.New(0)) // consume init-time randomness structure
	if err := b.LoadState(blob); err != nil {
		t.Fatal(err)
	}
	for now := 25.0; now < 60; now++ {
		a.Step(asA, now, 1)
		b.Step(asB, now, 1)
	}
	if !asA.Equal(asB) {
		t.Fatal("restored program diverged from the original")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	p := Bzip2(1)
	if err := p.LoadState(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if err := p.LoadState([]byte("way too short")); err == nil {
		t.Fatal("short blob accepted")
	}
	blob := p.SaveState()
	blob[0] = 'X'
	if err := p.LoadState(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSaveStateIsStable(t *testing.T) {
	p := Milc(5)
	as := memsim.New(0)
	p.Init(as)
	b1 := p.SaveState()
	b2 := p.SaveState()
	if string(b1) != string(b2) {
		t.Fatal("SaveState must not perturb state")
	}
	// Stepping changes the state.
	p.Step(as, 0, 5)
	if string(p.SaveState()) == string(b1) {
		t.Fatal("state did not change after stepping")
	}
}

func TestStatefulInterface(t *testing.T) {
	var _ Stateful = Sphinx3(1)
	var _ Stateful = (*Synthetic)(nil)
}
