package workload

import (
	"testing"

	"aic/internal/ckpt"
	"aic/internal/memsim"
)

func TestAllBenchmarksConstruct(t *testing.T) {
	progs := All(42)
	if len(progs) != 6 {
		t.Fatalf("got %d benchmarks", len(progs))
	}
	names := map[string]bool{}
	for _, p := range progs {
		names[p.Name()] = true
		if p.BaseTime() <= 0 || p.FootprintPages() <= 0 {
			t.Fatalf("%s: bad dimensions", p.Name())
		}
	}
	for _, want := range []string{"bzip2", "sjeng", "libquantum", "milc", "lbm", "sphinx3"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("milc", 1)
	if err != nil || p.Name() != "milc" {
		t.Fatalf("ByName: %v %v", p, err)
	}
	if _, err := ByName("gcc", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBaseTimesMatchPaper(t *testing.T) {
	want := map[string]float64{
		"bzip2": 152, "sjeng": 661, "libquantum": 846,
		"milc": 527, "lbm": 462, "sphinx3": 749,
	}
	for _, p := range All(1) {
		if p.BaseTime() != want[p.Name()] {
			t.Fatalf("%s base time %v, want %v", p.Name(), p.BaseTime(), want[p.Name()])
		}
	}
}

func TestInitMapsFootprint(t *testing.T) {
	p := Sphinx3(1)
	as := memsim.New(0)
	p.Init(as)
	if as.NumPages() != p.FootprintPages() {
		t.Fatalf("mapped %d pages, want %d", as.NumPages(), p.FootprintPages())
	}
	if as.DirtyCount() != p.FootprintPages() {
		t.Fatal("init must dirty the whole footprint (first checkpoint is full)")
	}
}

func TestStepProducesDirtyPages(t *testing.T) {
	for _, p := range All(7) {
		as := memsim.New(0)
		p.Init(as)
		as.ResetDirty()
		for now := 0.0; now < 10; now++ {
			p.Step(as, now, 1)
		}
		if as.DirtyCount() == 0 {
			t.Fatalf("%s produced no dirty pages in 10 s", p.Name())
		}
		if as.DirtyCount() > p.FootprintPages() {
			t.Fatalf("%s dirtied more pages than its footprint", p.Name())
		}
	}
}

func TestStepDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) *memsim.AddressSpace {
		p := Sjeng(seed)
		as := memsim.New(0)
		p.Init(as)
		for now := 0.0; now < 30; now++ {
			p.Step(as, now, 1)
		}
		return as
	}
	if !run(5).Equal(run(5)) {
		t.Fatal("same seed produced different memory images")
	}
	if run(5).Equal(run(6)) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestStepZeroDtIsNoop(t *testing.T) {
	p := Bzip2(1)
	as := memsim.New(0)
	p.Init(as)
	as.ResetDirty()
	p.Step(as, 0, 0)
	if as.DirtyCount() != 0 {
		t.Fatal("zero-dt step wrote pages")
	}
}

func TestRateCarryAccumulates(t *testing.T) {
	// A phase at 0.5 pages/s stepped at dt=1 must write ~5 pages in 10 s,
	// not zero.
	p := NewSynthetic("slow", 100, 64, 1, []Phase{
		{Duration: 100, Rate: 0.5, RegionLo: 0, RegionHi: 64, Pattern: Random, Mode: Tick},
	})
	as := memsim.New(0)
	p.Init(as)
	as.ResetDirty()
	touches := 0
	as.SetFirstWriteHook(func(uint64, float64) { touches++ })
	for now := 0.0; now < 10; now++ {
		p.Step(as, now, 1)
	}
	if touches == 0 {
		t.Fatal("sub-1-per-step rate produced no touches")
	}
}

func TestPhaseCycling(t *testing.T) {
	p := NewSynthetic("cyc", 100, 16, 1, []Phase{
		{Duration: 2, Rate: 10, RegionLo: 0, RegionHi: 8, Pattern: Random, Mode: Tick},
		{Duration: 3, Rate: 10, RegionLo: 8, RegionHi: 16, Pattern: Random, Mode: Tick},
	})
	if ph := p.phaseAt(0.5); ph.RegionLo != 0 {
		t.Fatal("phase 0 expected at t=0.5")
	}
	if ph := p.phaseAt(3.0); ph.RegionLo != 8 {
		t.Fatal("phase 1 expected at t=3")
	}
	if ph := p.phaseAt(5.5); ph.RegionLo != 0 {
		t.Fatal("cycle must wrap at t=5.5")
	}
}

func TestNewSyntheticPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewSynthetic("x", 10, 4, 1, nil) },
		func() { NewSynthetic("x", 0, 4, 1, []Phase{{Duration: 1, RegionHi: 1}}) },
		func() {
			NewSynthetic("x", 10, 4, 1, []Phase{{Duration: 1, RegionLo: 2, RegionHi: 9, Rate: 1}})
		},
		func() {
			NewSynthetic("x", 10, 4, 1, []Phase{{Duration: 0, RegionLo: 0, RegionHi: 4, Rate: 1}})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad config accepted", i)
				}
			}()
			f()
		}()
	}
}

// Compression-behaviour ordering that Table 3 depends on: sphinx3 deltas
// compress far better than milc/lbm deltas; milc/lbm stay near-raw.
func TestCompressionRatioOrdering(t *testing.T) {
	ratio := func(p Program, horizon float64) float64 {
		as := memsim.New(0)
		b := ckpt.NewBuilder(as.PageSize(), 0, 0)
		p.Init(as)
		b.FullCheckpoint(as)
		// One warm interval so hot pages exist.
		for now := 0.0; now < horizon; now++ {
			p.Step(as, now, 1)
		}
		b.IncrementalCheckpoint(as)
		for now := horizon; now < 2*horizon; now++ {
			p.Step(as, now, 1)
		}
		_, st := b.DeltaCheckpoint(as)
		return st.Ratio()
	}
	sphinx := ratio(Sphinx3(1), 20)
	milc := ratio(Milc(2), 20)
	lbm := ratio(Lbm(3), 20)
	bzip := ratio(Bzip2(4), 20)
	if sphinx >= 0.5 {
		t.Fatalf("sphinx3 ratio %v too high", sphinx)
	}
	if milc < 0.6 || lbm < 0.6 {
		t.Fatalf("milc/lbm ratios %v/%v too low — must be near-raw", milc, lbm)
	}
	if !(sphinx < bzip && bzip < lbm) {
		t.Fatalf("ordering violated: sphinx %v, bzip %v, lbm %v", sphinx, bzip, lbm)
	}
}

// Sjeng's settle phases must produce intervals whose deltas are drastically
// smaller than scramble-phase deltas — the Fig. 2 swing.
func TestSjengDeltaSwings(t *testing.T) {
	p := Sjeng(9)
	as := memsim.New(0)
	b := ckpt.NewBuilder(as.PageSize(), 0, 0)
	p.Init(as)
	b.FullCheckpoint(as)
	var sizes []int
	now := 0.0
	for i := 0; i < 12; i++ {
		for k := 0; k < 6; k++ {
			p.Step(as, now, 1)
			now++
		}
		c, _ := b.DeltaCheckpoint(as)
		sizes = append(sizes, c.Size())
	}
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if float64(minS) > 0.3*float64(maxS) {
		t.Fatalf("sjeng delta sizes lack swings: min %d, max %d", minS, maxS)
	}
}
