// Package workload provides the six SPEC CPU2006-like synthetic programs
// the evaluation runs (Table 3: Bzip2, Sjeng, Libquantum, Milc, Lbm,
// Sphinx3), plus the generic phase-driven synthesizer they are built from.
//
// Real SPEC binaries cannot expose page-level write behaviour through the
// Go runtime, so each program reproduces its benchmark's *memory behaviour*
// instead: footprint, dirty-page rate, access pattern (streaming sweep vs
// random table updates vs hotspot), content mutation style (fraction of a
// page rewritten per touch, random vs settling-toward-canonical content)
// and phase structure. These are exactly the properties that determine
// incremental-checkpoint sizes, delta compressibility and their dynamics
// over time — the quantities AIC exploits.
package workload

import (
	"fmt"

	"aic/internal/memsim"
	"aic/internal/numeric"
)

// Program drives page writes into a simulated address space over virtual
// time.
type Program interface {
	// Name is the benchmark label.
	Name() string
	// BaseTime is the base execution time t in virtual seconds (Table 3).
	BaseTime() float64
	// FootprintPages is the number of pages the program maps at Init.
	FootprintPages() int
	// Init allocates and fills the initial footprint at virtual time 0.
	Init(as *memsim.AddressSpace)
	// Step advances execution from now by dt seconds, issuing writes.
	Step(as *memsim.AddressSpace, now, dt float64)
}

// Pattern selects how a phase picks pages to touch.
type Pattern int

// Access patterns.
const (
	Sweep   Pattern = iota // sequential pass over the region (lattice/stream codes)
	Random                 // uniform random pages in the region (hash tables)
	Hotspot                // skewed toward the start of the region
)

// Mode selects how a touch mutates page content.
type Mode int

// Content mutation modes.
const (
	// Scramble writes fresh random bytes: high JD, poorly compressible.
	Scramble Mode = iota
	// Settle rewrites bytes back toward the page's canonical content,
	// restoring similarity with earlier checkpoints: low JD after a phase
	// of scrambling — the source of the paper's Fig. 2 swings.
	Settle
	// Tick increments a few structured counters: tiny, highly compressible
	// modifications.
	Tick
)

// Phase is one segment of a program's cyclic behaviour.
type Phase struct {
	Duration float64 // virtual seconds
	Rate     float64 // page touches per virtual second
	RegionLo int     // first page index of the touched region
	RegionHi int     // one past the last page index
	Pattern  Pattern
	Mode     Mode
	// Fraction of the page rewritten per touch (0..1]; Tick ignores it.
	Fraction float64
}

// Synthetic is a phase-driven program. Construct with NewSynthetic or one
// of the benchmark constructors.
type Synthetic struct {
	name     string
	baseTime float64
	pages    int
	phases   []Phase
	cycle    float64
	seed     uint64
	rng      *numeric.RNG
	sweepPos int
	carry    float64 // fractional page touches carried between steps
	buf      []byte
}

// NewSynthetic builds a program from its phase schedule. It panics on an
// empty schedule or non-positive dimensions, which are programming errors.
func NewSynthetic(name string, baseTime float64, pages int, seed uint64, phases []Phase) *Synthetic {
	if len(phases) == 0 || pages <= 0 || baseTime <= 0 {
		panic(fmt.Sprintf("workload: invalid synthetic %q", name))
	}
	cycle := 0.0
	for i, ph := range phases {
		if ph.Duration <= 0 || ph.RegionLo < 0 || ph.RegionHi > pages || ph.RegionLo >= ph.RegionHi {
			panic(fmt.Sprintf("workload: invalid phase %d of %q", i, name))
		}
		cycle += ph.Duration
	}
	return &Synthetic{
		name:     name,
		baseTime: baseTime,
		pages:    pages,
		phases:   phases,
		cycle:    cycle,
		seed:     seed,
		rng:      numeric.NewRNG(seed),
	}
}

// Name implements Program.
func (s *Synthetic) Name() string { return s.name }

// BaseTime implements Program.
func (s *Synthetic) BaseTime() float64 { return s.baseTime }

// FootprintPages implements Program.
func (s *Synthetic) FootprintPages() int { return s.pages }

// canonicalPage fills buf with the page's canonical content: a
// deterministic pseudo-random pattern per (program, page), so Settle phases
// restore real similarity with earlier checkpoints.
func (s *Synthetic) canonicalPage(idx uint64, buf []byte) {
	r := numeric.NewRNG(s.seed ^ (idx+1)*0x9e3779b97f4a7c15)
	r.Bytes(buf)
}

// Init implements Program: every page starts at its canonical content.
func (s *Synthetic) Init(as *memsim.AddressSpace) {
	buf := make([]byte, as.PageSize())
	for i := 0; i < s.pages; i++ {
		s.canonicalPage(uint64(i), buf)
		as.Write(uint64(i), 0, buf, 0)
	}
}

// phaseAt returns the active phase at virtual time now.
func (s *Synthetic) phaseAt(now float64) Phase {
	t := now
	if s.cycle > 0 {
		t = now - float64(int(now/s.cycle))*s.cycle
	}
	for _, ph := range s.phases {
		if t < ph.Duration {
			return ph
		}
		t -= ph.Duration
	}
	return s.phases[len(s.phases)-1]
}

// Step implements Program. Touches within the step carry evenly spaced
// arrival times so hot-page grouping sees realistic inter-arrival gaps.
func (s *Synthetic) Step(as *memsim.AddressSpace, now, dt float64) {
	if dt <= 0 {
		return
	}
	ph := s.phaseAt(now)
	want := ph.Rate*dt + s.carry
	n := int(want)
	s.carry = want - float64(n)
	if n == 0 {
		return
	}
	pageSize := as.PageSize()
	if cap(s.buf) < pageSize {
		s.buf = make([]byte, pageSize)
	}
	span := ph.RegionHi - ph.RegionLo
	for i := 0; i < n; i++ {
		arrival := now + dt*float64(i)/float64(n)
		var page int
		switch ph.Pattern {
		case Sweep:
			page = ph.RegionLo + s.sweepPos%span
			s.sweepPos++
		case Random:
			page = ph.RegionLo + s.rng.Intn(span)
		case Hotspot:
			// Square a uniform variate: ~3x density at the region start.
			u := s.rng.Float64()
			page = ph.RegionLo + int(u*u*float64(span))
			if page >= ph.RegionHi {
				page = ph.RegionHi - 1
			}
		}
		s.touch(as, uint64(page), ph, arrival, pageSize)
	}
}

func (s *Synthetic) touch(as *memsim.AddressSpace, page uint64, ph Phase, arrival float64, pageSize int) {
	switch ph.Mode {
	case Tick:
		// Increment an 8-byte counter at a page-local slot.
		off := int(page*8) % (pageSize - 8)
		cur := as.Page(page)
		var word [8]byte
		if cur != nil {
			copy(word[:], cur[off:off+8])
		}
		for i := 0; i < 8; i++ {
			word[i]++
			if word[i] != 0 {
				break
			}
		}
		as.Write(page, off, word[:], arrival)
	case Scramble:
		n := int(ph.Fraction * float64(pageSize))
		if n <= 0 {
			n = 1
		}
		if n > pageSize {
			n = pageSize
		}
		off := 0
		if n < pageSize {
			off = s.rng.Intn(pageSize - n)
		}
		chunk := s.buf[:n]
		s.rng.Bytes(chunk)
		as.Write(page, off, chunk, arrival)
	case Settle:
		n := int(ph.Fraction * float64(pageSize))
		if n <= 0 {
			n = 1
		}
		if n > pageSize {
			n = pageSize
		}
		canon := s.buf[:pageSize]
		s.canonicalPage(page, canon)
		off := 0
		if n < pageSize {
			off = s.rng.Intn(pageSize - n)
		}
		as.Write(page, off, canon[off:off+n], arrival)
	}
}
