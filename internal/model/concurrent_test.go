package model

import (
	"math"
	"testing"

	"aic/internal/markov"
	"aic/internal/numeric"
)

func TestCoastalProfile(t *testing.T) {
	p := Coastal()
	if p.C != [3]float64{0.5, 4.5, 1052} {
		t.Fatalf("c = %v", p.C)
	}
	if p.R != p.C {
		t.Fatal("r_k must equal c_k")
	}
	if math.Abs(p.TotalRate()-2.4e-6) > 1e-12 {
		t.Fatalf("λ = %v", p.TotalRate())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := Coastal()
	p.Lambda[1] = -1
	if p.Validate() == nil {
		t.Fatal("negative rate accepted")
	}
	p = Coastal()
	p.C[2] = math.NaN()
	if p.Validate() == nil {
		t.Fatal("NaN latency accepted")
	}
}

func TestScaleMPI(t *testing.T) {
	p := Coastal().ScaleMPI(4)
	if math.Abs(p.Lambda[0]-8e-7) > 1e-18 || math.Abs(p.C[2]-4208) > 1e-9 {
		t.Fatalf("scaled: %+v", p)
	}
	if p.C[0] != 0.5 || p.C[1] != 4.5 {
		t.Fatal("c1/c2 must not scale")
	}
}

func TestScaleRMS(t *testing.T) {
	p := Coastal().ScaleRMS(4)
	if p.Lambda != Coastal().Lambda {
		t.Fatal("RMS scaling must not change λ")
	}
	if math.Abs(p.C[2]-4208) > 1e-9 {
		t.Fatalf("c3 = %v", p.C[2])
	}
}

func TestShareCheckpointCore(t *testing.T) {
	p := Coastal().ShareCheckpointCore(3)
	if math.Abs(p.C[1]-(0.5+3*4)) > 1e-12 {
		t.Fatalf("c2 = %v", p.C[1])
	}
	if math.Abs(p.C[2]-(0.5+3*1051.5)) > 1e-12 {
		t.Fatalf("c3 = %v", p.C[2])
	}
	if p.C[0] != 0.5 {
		t.Fatal("c1 must not change")
	}
	// SF below 1 clamps to 1.
	if Coastal().ShareCheckpointCore(0.5) != Coastal() {
		t.Fatal("SF < 1 should be identity")
	}
}

func TestClampSegments(t *testing.T) {
	p := Params{C: [3]float64{1, 5, 11}}
	both, one, full := clampSegments(p)
	if both != 4 || one != 6 || full != 10 {
		t.Fatalf("segments = %v %v %v", both, one, full)
	}
	// Degenerate: c2 > c3 (tiny delta, big compression latency).
	p = Params{C: [3]float64{1, 9, 5}}
	both, one, full = clampSegments(p)
	if both != 4 || one != 4 || full != 8 {
		t.Fatalf("degenerate segments = %v %v %v", both, one, full)
	}
	// c2 below c1 clamps to zero-length first phase.
	p = Params{C: [3]float64{2, 1, 6}}
	both, one, full = clampSegments(p)
	if both != 0 || one != 4 || full != 4 {
		t.Fatalf("clamped segments = %v %v %v", both, one, full)
	}
}

func TestNoFailureIntervalTimes(t *testing.T) {
	p := Coastal()
	p.Lambda = [3]float64{0, 0, 0}
	const w = 600
	for _, kind := range []ConcurrentKind{KindL1L3, KindL2L3, KindL1L2L3} {
		iv, err := kind.Eval(w, p)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		want := w + p.C[2] // w + c1 + (c3 - c1)
		if math.Abs(iv.ExpectedTime-want) > 1e-9 {
			t.Fatalf("%v: T = %v, want %v", kind, iv.ExpectedTime, want)
		}
		if math.Abs(iv.Work-(w+p.C[2]-p.C[0])) > 1e-9 {
			t.Fatalf("%v: work = %v", kind, iv.Work)
		}
		// Failure-free NET² barely exceeds 1 (only c1 blocks execution).
		if n := iv.NET2(); n < 1 || n > 1.01 {
			t.Fatalf("%v: NET² = %v", kind, n)
		}
	}
}

func TestIntervalNET2Degenerate(t *testing.T) {
	if !math.IsInf(Interval{ExpectedTime: 5}.NET2(), 1) {
		t.Fatal("zero work must give +Inf NET²")
	}
}

// The central correctness check: each analytic chain must agree with Monte
// Carlo simulation of the same chain under realistic failure rates.
func TestConcurrentChainsAnalyticVsMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Inflate rates so failures actually occur within feasible trials.
	p := Coastal()
	p.Lambda = [3]float64{1e-4, 7.5e-4, 2e-5}
	const w = 1800
	rng := numeric.NewRNG(7)
	check := func(name string, ch *markov.Chain, start int) {
		analytic, err := ch.ExpectedTime(start)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mc, err := ch.Simulate(rng.Split(), start, 120000, 1<<22)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(analytic-mc)/analytic > 0.02 {
			t.Fatalf("%s: analytic %v vs MC %v", name, analytic, mc)
		}
	}
	ch, s, _ := L1L3Interval(w, p)
	check("L1L3", ch, s)
	ch, s, _ = L2L3Interval(w, p, p)
	check("L2L3", ch, s)
	ch, s, _ = L1L2L3Interval(w, p)
	check("L1L2L3", ch, s)
}

func TestDynamicIntervalUsesPrevParams(t *testing.T) {
	cur := Coastal()
	prev := Coastal()
	prev.R[2] = 5 * prev.R[2] // much costlier recovery from interval i-1
	// With non-trivial failure rates, higher prev recovery time must raise
	// the expected interval time.
	cur.Lambda = [3]float64{1e-4, 1e-4, 1e-4}
	prev.Lambda = cur.Lambda
	base, err := EvalL2L3Dynamic(1000, cur, cur)
	if err != nil {
		t.Fatal(err)
	}
	worse, err := EvalL2L3Dynamic(1000, cur, prev)
	if err != nil {
		t.Fatal(err)
	}
	if worse.ExpectedTime <= base.ExpectedTime {
		t.Fatalf("prev params ignored: %v <= %v", worse.ExpectedTime, base.ExpectedTime)
	}
}

func TestExpectedTimeGrowsWithFailureRate(t *testing.T) {
	p := Coastal()
	lo, err := EvalL2L3(1000, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Lambda = [3]float64{2e-5, 1.8e-4, 4e-5}
	hi, err := EvalL2L3(1000, p)
	if err != nil {
		t.Fatal(err)
	}
	if hi.ExpectedTime <= lo.ExpectedTime {
		t.Fatalf("monotonicity violated: %v <= %v", hi.ExpectedTime, lo.ExpectedTime)
	}
}

func TestEvalAllKindsAgreeWithoutFailures(t *testing.T) {
	// With zero failure rates, every configuration degenerates to the same
	// failure-free timeline, whatever its recovery topology.
	p := Coastal()
	p.Lambda = [3]float64{}
	var times []float64
	for _, kind := range []ConcurrentKind{KindL1L3, KindL2L3, KindL1L2L3} {
		iv, err := kind.Eval(700, p)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, iv.ExpectedTime)
	}
	for i := 1; i < len(times); i++ {
		if math.Abs(times[i]-times[0]) > 1e-9 {
			t.Fatalf("failure-free times diverge: %v", times)
		}
	}
}

func TestLongerWorkSpanMoreExposure(t *testing.T) {
	// With failures enabled, a longer work span raises the per-interval
	// expected time superlinearly (more exposure + larger rework).
	p := Coastal()
	p.Lambda = [3]float64{1e-4, 1e-4, 1e-4}
	short, err := EvalL2L3(500, p)
	if err != nil {
		t.Fatal(err)
	}
	long, err := EvalL2L3(5000, p)
	if err != nil {
		t.Fatal(err)
	}
	if long.ExpectedTime-short.ExpectedTime <= 4500 {
		t.Fatalf("no failure-exposure growth: %v vs %v", short.ExpectedTime, long.ExpectedTime)
	}
}

func TestEvalUnknownKind(t *testing.T) {
	if _, err := ConcurrentKind(9).Eval(100, Coastal()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
