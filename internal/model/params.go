// Package model builds the paper's concurrent multi-level checkpointing
// chains (L1L3, L2L3, L1L2L3 — Fig. 4), the non-static per-interval L2L3
// model used by AIC (Fig. 8), and the Moody sequential baseline, together
// with the NET² optimizers that search the work span w (and Moody's n_k).
package model

import (
	"fmt"
	"math"
)

// Params carries the per-level failure rates, checkpoint latencies and
// recovery times of a system configuration (Table 2 symbols λ_k, c_k, r_k).
// Index 0 is level 1.
type Params struct {
	Lambda [3]float64 // failure arrival rate per level (1/s)
	C      [3]float64 // checkpoint latency per level (s)
	R      [3]float64 // recovery time per level (s)
}

// Coastal returns the LLNL Coastal cluster profile used throughout the
// paper's evaluation (Section III.D): λ = (2e-7, 1.8e-6, 4e-7),
// c = (0.5, 4.5, 1052), r_k = c_k.
func Coastal() Params {
	p := Params{
		Lambda: [3]float64{2e-7, 1.8e-6, 4e-7},
		C:      [3]float64{0.5, 4.5, 1052},
	}
	p.R = p.C
	return p
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	for k := 0; k < 3; k++ {
		if p.Lambda[k] < 0 || math.IsNaN(p.Lambda[k]) {
			return fmt.Errorf("model: λ%d = %v invalid", k+1, p.Lambda[k])
		}
		if p.C[k] < 0 || math.IsNaN(p.C[k]) {
			return fmt.Errorf("model: c%d = %v invalid", k+1, p.C[k])
		}
		if p.R[k] < 0 || math.IsNaN(p.R[k]) {
			return fmt.Errorf("model: r%d = %v invalid", k+1, p.R[k])
		}
	}
	return nil
}

// TotalRate returns the system failure rate λ = Σ λ_k.
func (p Params) TotalRate() float64 { return p.Lambda[0] + p.Lambda[1] + p.Lambda[2] }

// ScaleMPI returns the profile under MPI system-size scaling (Section
// III.D): the failure of any process fails the whole job, so every λ_k
// scales with size; remote-storage bandwidth congests, so c3 (and r3) scale
// too, while c1, c2 stay flat.
func (p Params) ScaleMPI(size float64) Params {
	out := p
	for k := 0; k < 3; k++ {
		out.Lambda[k] *= size
	}
	out.C[2] *= size
	out.R[2] *= size
	return out
}

// ScaleRMS returns the profile under RMS system-size scaling: processes run
// almost independently so λ is unchanged, but per-node bandwidth to remote
// storage still shrinks, scaling c3 (and r3).
func (p Params) ScaleRMS(size float64) Params {
	out := p
	out.C[2] *= size
	out.R[2] *= size
	return out
}

// ShareCheckpointCore returns the profile when sf computation processes
// share one checkpointing core (Section III.D worst case): the concurrent
// transfer segments c2−c1 and c3−c1 stretch by sf. Recovery reads are
// likewise shared.
func (p Params) ShareCheckpointCore(sf float64) Params {
	if sf < 1 {
		sf = 1
	}
	out := p
	out.C[1] = p.C[0] + sf*math.Max(0, p.C[1]-p.C[0])
	out.C[2] = p.C[0] + sf*math.Max(0, p.C[2]-p.C[0])
	out.R[1] = p.R[0] + sf*math.Max(0, p.R[1]-p.R[0])
	out.R[2] = p.R[0] + sf*math.Max(0, p.R[2]-p.R[0])
	return out
}
