package model

import (
	"math"
	"testing"
)

func TestYoungInterval(t *testing.T) {
	w, err := YoungInterval(10, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-math.Sqrt(2*10/1e-4)) > 1e-9 {
		t.Fatalf("w = %v", w)
	}
	if _, err := YoungInterval(0, 1); err == nil {
		t.Fatal("zero δ accepted")
	}
	if _, err := YoungInterval(1, 0); err == nil {
		t.Fatal("zero λ accepted")
	}
}

func TestDalyInterval(t *testing.T) {
	// Small δ/M: Daly ≈ Young − δ-ish corrections; must be within ~10% of
	// Young and smaller than it.
	const delta, lambda = 10.0, 1e-4
	young, _ := YoungInterval(delta, lambda)
	daly, err := DalyInterval(delta, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if daly >= young {
		t.Fatalf("Daly %v should refine Young %v downward for small δ", daly, young)
	}
	if math.Abs(daly-young)/young > 0.1 {
		t.Fatalf("Daly %v too far from Young %v", daly, young)
	}
	// Saturated regime: w* = MTBF.
	sat, err := DalyInterval(3000, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sat != 1000 {
		t.Fatalf("saturated Daly = %v, want MTBF", sat)
	}
	if _, err := DalyInterval(-1, 1); err == nil {
		t.Fatal("negative δ accepted")
	}
}

func TestSingleLevelClosedForm(t *testing.T) {
	// Classic result with instantaneous recovery: E[T] for an interval of
	// total length L = w + δ restarted on failure is (e^{λL} − 1)/λ.
	const w, delta, lambda = 100.0, 5.0, 1e-3
	got, err := SingleLevelExpectedTime(w, delta, 0, lambda)
	if err != nil {
		t.Fatal(err)
	}
	L := w + delta
	want := (math.Exp(lambda*L) - 1) / lambda
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("E[T] = %v, want closed form %v", got, want)
	}
}

func TestSingleLevelWithRecoveryMatchesManualChain(t *testing.T) {
	// With recovery cost r, verify against an independently constructed
	// two-state solution: T = E_L + (1−p_L)(T_R + T), T_R = E_r + ... —
	// use Monte Carlo of the same chain as the oracle via EvalMoody's
	// internals already being tested; here check monotonicity in r.
	a, err := SingleLevelExpectedTime(100, 5, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleLevelExpectedTime(100, 5, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("recovery cost must increase E[T]: %v vs %v", a, b)
	}
}

// The anchor test: the general Markov/Moody machinery, restricted to a
// single level, must locate an optimum work span close to Daly's
// closed-form estimate.
func TestOptimizeSingleLevelMatchesDaly(t *testing.T) {
	cases := []struct{ delta, lambda float64 }{
		{5, 1e-4},
		{30, 1e-4},
		{5, 1e-3},
		{60, 1e-5},
	}
	for _, c := range cases {
		daly, err := DalyInterval(c.delta, c.lambda)
		if err != nil {
			t.Fatal(err)
		}
		w, net2, err := OptimizeSingleLevel(c.delta, c.delta, c.lambda, 1, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if net2 <= 1 {
			t.Fatalf("δ=%v λ=%v: NET² = %v", c.delta, c.lambda, net2)
		}
		// Daly's estimate uses slightly different conventions (recovery
		// excluded from the optimization); agreement within 15% is the
		// expected regime for these parameters.
		if math.Abs(w-daly)/daly > 0.15 {
			t.Fatalf("δ=%v λ=%v: Markov optimum %v vs Daly %v", c.delta, c.lambda, w, daly)
		}
	}
}

func TestOptimizeSingleLevelErrors(t *testing.T) {
	if _, _, err := OptimizeSingleLevel(0, 0, 1, 1, 10); err == nil {
		t.Fatal("zero δ accepted")
	}
}

func TestVaidyaOverheadRatio(t *testing.T) {
	r, err := VaidyaOverheadRatio(100, 5, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free lower bound: δ/w = 5%.
	if r < 0.05 || r > 0.2 {
		t.Fatalf("overhead ratio = %v", r)
	}
	if _, err := VaidyaOverheadRatio(0, 5, 5, 1e-4); err == nil {
		t.Fatal("zero work span accepted")
	}
	// Overhead grows with λ.
	r2, err := VaidyaOverheadRatio(100, 5, 5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r {
		t.Fatalf("overhead must grow with λ: %v vs %v", r, r2)
	}
}
