package model

import (
	"math"
	"testing"

	"aic/internal/numeric"
)

func TestMoodyScheduleConstruction(t *testing.T) {
	s := NewMoodySchedule(0, 0)
	if len(s) != 1 || s[0] != 3 {
		t.Fatalf("(0,0) schedule = %v", s)
	}
	s = NewMoodySchedule(0, 3)
	want := MoodySchedule{2, 2, 2, 3}
	if len(s) != len(want) {
		t.Fatalf("schedule = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", s, want)
		}
	}
	s = NewMoodySchedule(2, 2)
	want = MoodySchedule{1, 1, 2, 1, 1, 2, 1, 1, 3}
	if len(s) != len(want) {
		t.Fatalf("schedule = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", s, want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoodyScheduleValidate(t *testing.T) {
	if (MoodySchedule{}).Validate() == nil {
		t.Fatal("empty schedule accepted")
	}
	if (MoodySchedule{5}).Validate() == nil {
		t.Fatal("bad level accepted")
	}
	if (MoodySchedule{3, 2}).Validate() == nil {
		t.Fatal("schedule not ending in max level accepted")
	}
}

func TestMoodyRestorePoint(t *testing.T) {
	s := MoodySchedule{2, 1, 2, 3}
	// At position 2 (segments 0,1 done), an f2 (class 1) needs level ≥ 2:
	// segment 0's L2 checkpoint.
	if m := s.restorePoint(2, 1); m != 0 {
		t.Fatalf("restorePoint(2, f2) = %d", m)
	}
	// An f1 (class 0) can use the most recent checkpoint: segment 1's L1.
	if m := s.restorePoint(2, 0); m != 1 {
		t.Fatalf("restorePoint(2, f1) = %d", m)
	}
	// An f3 (class 2) needs level 3: only the previous period's close.
	if m := s.restorePoint(2, 2); m != -1 {
		t.Fatalf("restorePoint(2, f3) = %d", m)
	}
	if s.levelAt(-1) != 3 {
		t.Fatal("levelAt(-1) must be the closing level")
	}
}

func TestMoodyNoFailureTime(t *testing.T) {
	p := Coastal()
	p.Lambda = [3]float64{0, 0, 0}
	sched := NewMoodySchedule(0, 3) // L2 L2 L2 L3
	iv, err := EvalMoody(500, sched, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*500 + 3*p.C[1] + p.C[2]
	if math.Abs(iv.ExpectedTime-want) > 1e-9 {
		t.Fatalf("T = %v, want %v", iv.ExpectedTime, want)
	}
	if iv.Work != 2000 {
		t.Fatalf("work = %v", iv.Work)
	}
}

func TestMoodyAnalyticVsMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Coastal()
	p.Lambda = [3]float64{1e-4, 7.5e-4, 2e-5}
	sched := NewMoodySchedule(1, 2)
	ch, start, _, err := MoodyPeriod(900, sched, p)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ch.ExpectedTime(start)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ch.Simulate(numeric.NewRNG(3), start, 120000, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-mc)/analytic > 0.02 {
		t.Fatalf("analytic %v vs MC %v", analytic, mc)
	}
}

func TestMoodySequentialCostExceedsConcurrent(t *testing.T) {
	// With identical parameters and the same work span, the sequential
	// Moody interval (single L3 period) must take at least as long as the
	// concurrent L2L3 interval, because Moody blocks for the full c3.
	p := Coastal()
	const w = 1800
	moody, err := EvalMoody(w, NewMoodySchedule(0, 0), p)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := EvalL2L3(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if moody.NET2() <= conc.NET2() {
		t.Fatalf("Moody NET² %v should exceed concurrent %v", moody.NET2(), conc.NET2())
	}
}

func TestOptimizeMoodyFindsFiniteOptimum(t *testing.T) {
	res, err := OptimizeMoody(Coastal(), 10, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NET2 < 1 || math.IsInf(res.NET2, 1) {
		t.Fatalf("NET² = %v", res.NET2)
	}
	if res.W < 10 || res.W > 200000 {
		t.Fatalf("w* = %v out of bounds", res.W)
	}
}

func TestOptimizeConcurrentBeatsMoodyOnCoastal(t *testing.T) {
	// The paper's headline analytic claim (Figs. 5/6): concurrent L2L3
	// yields lower NET² than Moody under the Coastal profile.
	p := Coastal()
	moody, err := OptimizeMoody(p, 10, 200000)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := OptimizeConcurrent(KindL2L3, p, 10, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if conc.NET2 >= moody.NET2 {
		t.Fatalf("L2L3 %v must beat Moody %v", conc.NET2, moody.NET2)
	}
}

func TestConcurrentKindString(t *testing.T) {
	if KindL1L3.String() != "L1L3" || KindL2L3.String() != "L2L3" || KindL1L2L3.String() != "L1L2L3" {
		t.Fatal("kind names")
	}
	if ConcurrentKind(9).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

func TestL2L3CloseToL1L2L3(t *testing.T) {
	// Fig. 5/6 observation: L2L3 and L1L2L3 are nearly identical, which is
	// why the paper drops L1.
	p := Coastal().ScaleMPI(4)
	a, err := OptimizeConcurrent(KindL2L3, p, 10, 200000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeConcurrent(KindL1L2L3, p, 10, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NET2-b.NET2)/b.NET2 > 0.05 {
		t.Fatalf("L2L3 %v vs L1L2L3 %v differ too much", a.NET2, b.NET2)
	}
}

func TestOptimalWorkSpanDynamic(t *testing.T) {
	cur := Coastal()
	cur.Lambda = [3]float64{8.3e-5, 7.5e-4, 1.67e-5}
	w, net2, iters := OptimalWorkSpanDynamic(cur, cur, 1, 7200)
	if w < 1 || w > 7200 {
		t.Fatalf("w*_L = %v out of bounds", w)
	}
	if net2 < 1 || math.IsInf(net2, 1) {
		t.Fatalf("NET² = %v", net2)
	}
	if iters > 200 {
		t.Fatalf("NR iterations %d exceed paper bound", iters)
	}
	// Grid cross-check: the EVT+NR optimum should be no worse than a coarse
	// scan by more than a small tolerance.
	bestGrid := math.Inf(1)
	for gw := 1.0; gw <= 7200; gw *= 1.3 {
		iv, err := EvalL2L3Dynamic(gw, cur, cur)
		if err != nil {
			continue
		}
		if n := iv.NET2(); n < bestGrid {
			bestGrid = n
		}
	}
	if net2 > bestGrid*1.02 {
		t.Fatalf("EVT result %v much worse than grid %v", net2, bestGrid)
	}
}
