package model

import (
	"fmt"
	"math"

	"aic/internal/numeric"
)

// ConcurrentKind selects which concurrent chain configuration to evaluate.
type ConcurrentKind int

// The three concurrent configurations of Fig. 4 (L3 is always enabled).
const (
	KindL1L3 ConcurrentKind = iota
	KindL2L3
	KindL1L2L3
)

// String names the configuration as the paper does.
func (k ConcurrentKind) String() string {
	switch k {
	case KindL1L3:
		return "L1L3"
	case KindL2L3:
		return "L2L3"
	case KindL1L2L3:
		return "L1L2L3"
	}
	return fmt.Sprintf("ConcurrentKind(%d)", int(k))
}

// Eval evaluates the configuration's interval at work span w.
func (k ConcurrentKind) Eval(w float64, p Params) (Interval, error) {
	switch k {
	case KindL1L3:
		return EvalL1L3(w, p)
	case KindL2L3:
		return EvalL2L3(w, p)
	case KindL1L2L3:
		return EvalL1L2L3(w, p)
	}
	return Interval{}, fmt.Errorf("model: unknown kind %d", int(k))
}

// ConcurrentResult is the outcome of the concurrent-model work-span search.
type ConcurrentResult struct {
	Kind ConcurrentKind
	W    float64 // optimal work span w*
	NET2 float64
}

// logGoldenSection minimizes obj over [lo, hi] in log-space, seeded by a
// coarse grid so locally non-unimodal objectives still land in the right
// basin. It returns the located argmin and value.
func logGoldenSection(obj func(float64) float64, lo, hi float64) (float64, float64) {
	if lo <= 0 {
		lo = 1e-3
	}
	if hi <= lo {
		hi = lo * 10
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	const gridN = 24
	bestX, bestF := lo, obj(lo)
	for i := 0; i <= gridN; i++ {
		x := math.Exp(logLo + (logHi-logLo)*float64(i)/gridN)
		if f := obj(x); f < bestF {
			bestX, bestF = x, f
		}
	}
	// Refine around the best grid cell.
	span := (logHi - logLo) / gridN
	a := math.Exp(math.Max(logLo, math.Log(bestX)-span))
	b := math.Exp(math.Min(logHi, math.Log(bestX)+span))
	x, f := numeric.GoldenSection(func(lw float64) float64 {
		return obj(math.Exp(lw))
	}, math.Log(a), math.Log(b), 1e-6)
	x = math.Exp(x)
	if f < bestF {
		return x, f
	}
	return bestX, bestF
}

// OptimizeConcurrent searches the work span w ∈ [wLo, wHi] minimizing NET²
// for the given configuration, the static analogue of the paper's offline
// search ("this can be done numerically, like in earlier work").
func OptimizeConcurrent(kind ConcurrentKind, p Params, wLo, wHi float64) (ConcurrentResult, error) {
	if err := p.Validate(); err != nil {
		return ConcurrentResult{}, err
	}
	obj := func(w float64) float64 {
		iv, err := kind.Eval(w, p)
		if err != nil {
			return math.Inf(1)
		}
		return iv.NET2()
	}
	w, net2 := logGoldenSection(obj, wLo, wHi)
	if math.IsInf(net2, 1) {
		return ConcurrentResult{}, fmt.Errorf("model: %v search found no feasible point", kind)
	}
	return ConcurrentResult{Kind: kind, W: w, NET2: net2}, nil
}

// OptimalWorkSpanDynamic computes the paper's per-decision local optimum
// w*_L for the non-static L2L3 model (Section III.E): NET² at both search
// boundaries and at the Newton–Raphson stationary point are compared per the
// Extreme Value Theorem; the argmin is returned along with the NR iteration
// count (bounded by 200 in the paper, and observed < 5 in practice).
func OptimalWorkSpanDynamic(cur, prev Params, wLo, wHi float64) (wStar, net2 float64, nrIters int) {
	obj := func(w float64) float64 {
		iv, err := EvalL2L3Dynamic(w, cur, prev)
		if err != nil {
			return math.Inf(1)
		}
		return iv.NET2()
	}
	return numeric.MinimizeEVT(obj, wLo, wHi, 200)
}
