package model

import (
	"fmt"
	"math"

	"aic/internal/markov"
)

// MoodySchedule describes one period of the Moody multi-level scheme: a
// sequence of checkpoint levels (1-based), one per work segment, ending with
// the highest enabled level. The parameter n_k of the paper maps to how many
// level-k checkpoints appear between level-(k+1) checkpoints.
type MoodySchedule []int

// NewMoodySchedule builds the hierarchical level sequence for the given
// counts: n1 level-1 checkpoints before each level-2 checkpoint, n2 level-2
// blocks before the closing level-3 checkpoint. (n1, n2) = (0, 0) yields a
// single L3 checkpoint per period.
func NewMoodySchedule(n1, n2 int) MoodySchedule {
	var seq MoodySchedule
	for j := 0; j < n2; j++ {
		for i := 0; i < n1; i++ {
			seq = append(seq, 1)
		}
		seq = append(seq, 2)
	}
	for i := 0; i < n1; i++ {
		seq = append(seq, 1)
	}
	seq = append(seq, 3)
	return seq
}

// Validate checks the schedule is non-empty, uses levels 1..3, and ends with
// the period's highest level (so every period is L3-recoverable).
func (s MoodySchedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("model: empty Moody schedule")
	}
	maxLvl := 0
	for _, l := range s {
		if l < 1 || l > 3 {
			return fmt.Errorf("model: Moody schedule level %d out of range", l)
		}
		if l > maxLvl {
			maxLvl = l
		}
	}
	if s[len(s)-1] != maxLvl {
		return fmt.Errorf("model: Moody schedule must end with its highest level")
	}
	return nil
}

// restorePoint returns the most recent segment index m < pos whose
// checkpoint level can recover a class-k failure (level ≥ k+1), or −1 when
// recovery must come from the previous period's closing checkpoint.
func (s MoodySchedule) restorePoint(pos, class int) int {
	need := class + 1
	for m := pos - 1; m >= 0; m-- {
		if s[m] >= need {
			return m
		}
	}
	return -1
}

// levelAt returns the checkpoint level at restore point m (−1 maps to the
// previous period's closing level).
func (s MoodySchedule) levelAt(m int) int {
	if m < 0 {
		return s[len(s)-1]
	}
	return s[m]
}

// MoodyPeriod builds the sequential Moody chain for one period: segment j
// blocks for w + c_level(j); a class-k failure rewinds to the latest
// checkpoint of level ≥ k+1 (paying that level's recovery time) and re-runs
// from there, re-taking checkpoints along the way — exactly the behaviour of
// Moody's SCR model restated in the paper's Markov formalism.
func MoodyPeriod(w float64, sched MoodySchedule, p Params) (*markov.Chain, int, Interval, error) {
	if err := sched.Validate(); err != nil {
		return nil, 0, Interval{}, err
	}
	n := len(sched)
	ch := markov.New(p.Lambda[:])

	work := make([]int, n)
	for j := 0; j < n; j++ {
		work[j] = ch.AddState(fmt.Sprintf("W%d(L%d)", j, sched[j]), w+p.C[sched[j]-1])
	}
	// Recovery states keyed by restore point m ∈ [−1, n−2].
	recover := make(map[int]int)
	recState := func(m int) int {
		if id, ok := recover[m]; ok {
			return id
		}
		lvl := sched.levelAt(m)
		id := ch.AddState(fmt.Sprintf("R(m=%d,L%d)", m, lvl), p.R[lvl-1])
		recover[m] = id
		return id
	}
	// Pre-create all reachable recovery states, then wire them: creation
	// must finish before wiring because recovery states reference each
	// other.
	for j := 0; j < n; j++ {
		for k := 0; k < 3; k++ {
			if p.Lambda[k] > 0 {
				recState(sched.restorePoint(j, k))
			}
		}
	}
	// Failures during recovery can expose deeper restore points.
	for changed := true; changed; {
		changed = false
		for m := range recover {
			for k := 0; k < 3; k++ {
				if p.Lambda[k] == 0 {
					continue
				}
				m2 := sched.restorePoint(m+1, k)
				if _, ok := recover[m2]; !ok {
					recState(m2)
					changed = true
				}
			}
		}
	}

	for j := 0; j < n; j++ {
		if j == n-1 {
			ch.SetSuccess(work[j], markov.Done)
		} else {
			ch.SetSuccess(work[j], work[j+1])
		}
		for k := 0; k < 3; k++ {
			if p.Lambda[k] == 0 {
				continue
			}
			ch.SetFailure(work[j], k, recover[sched.restorePoint(j, k)])
		}
	}
	for m, id := range recover {
		if m+1 >= n {
			return nil, 0, Interval{}, fmt.Errorf("model: recovery past period end")
		}
		ch.SetSuccess(id, work[m+1])
		for k := 0; k < 3; k++ {
			if p.Lambda[k] == 0 {
				continue
			}
			ch.SetFailure(id, k, recover[sched.restorePoint(m+1, k)])
		}
	}

	return ch, work[0], Interval{Work: float64(n) * w}, nil
}

// EvalMoody returns the evaluated Moody period for work span w.
func EvalMoody(w float64, sched MoodySchedule, p Params) (Interval, error) {
	ch, start, iv, err := MoodyPeriod(w, sched, p)
	if err != nil {
		return Interval{}, err
	}
	t, err := ch.ExpectedTime(start)
	iv.ExpectedTime = t
	return iv, err
}

// MoodyResult is the outcome of the Moody parameter search.
type MoodyResult struct {
	W    float64
	N1   int
	N2   int
	NET2 float64
}

// OptimizeMoody explores (w, n1, n2) like the public Moody model code the
// paper compares against, returning the configuration with the lowest NET².
// wLo/wHi bound the work-span search.
func OptimizeMoody(p Params, wLo, wHi float64) (MoodyResult, error) {
	if err := p.Validate(); err != nil {
		return MoodyResult{}, err
	}
	best := MoodyResult{NET2: math.Inf(1)}
	n1s := []int{0, 1, 2, 4, 8, 16}
	n2s := []int{0, 1, 2, 4, 8, 16, 32}
	for _, n1 := range n1s {
		for _, n2 := range n2s {
			sched := NewMoodySchedule(n1, n2)
			if len(sched) > 72 {
				continue // keep the linear solves tractable; large periods
				// are never optimal under the profiles studied
			}
			obj := func(w float64) float64 {
				iv, err := EvalMoody(w, sched, p)
				if err != nil {
					return math.Inf(1)
				}
				return iv.NET2()
			}
			w, net2 := logGoldenSection(obj, wLo, wHi)
			if net2 < best.NET2 {
				best = MoodyResult{W: w, N1: n1, N2: n2, NET2: net2}
			}
		}
	}
	if math.IsInf(best.NET2, 1) {
		return best, fmt.Errorf("model: Moody search found no feasible point")
	}
	return best, nil
}
