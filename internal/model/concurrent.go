package model

import (
	"math"

	"aic/internal/markov"
)

// Interval is an evaluated checkpoint interval: the chain's expected runtime
// and the base work the interval accomplishes (computation continues on the
// compute cores during the concurrent transfer segment, so Work exceeds w).
type Interval struct {
	ExpectedTime float64 // T_int
	Work         float64 // base execution progress per interval
}

// NET2 returns the interval's normalized expected turnaround time
// contribution T_int / work.
func (iv Interval) NET2() float64 {
	if iv.Work <= 0 {
		return math.Inf(1)
	}
	return iv.ExpectedTime / iv.Work
}

// clampSegments splits the concurrent transfer window into the two phases
// used by the chains: [c1 .. min(c2,c3)] (neither remote level complete) and
// [min(c2,c3) .. max(c2,c3)] (the faster level complete). Degenerate
// parameter orderings (e.g. a delta so small that c2 > c3) collapse cleanly
// to zero-length phases.
func clampSegments(p Params) (phaseBoth, phaseOne, full float64) {
	c1 := p.C[0]
	lo := math.Max(c1, math.Min(p.C[1], p.C[2]))
	hi := math.Max(lo, math.Max(p.C[1], p.C[2]))
	return lo - c1, hi - lo, hi - c1
}

// L1L3Interval builds the two-level L1L3 concurrent chain of Fig. 4(a) for
// work span w. Failure classes are (f1, f2, f3); f2 and f3 both require L3
// recovery because no L2 checkpoint exists in this configuration.
func L1L3Interval(w float64, p Params) (*markov.Chain, int, Interval) {
	seg := math.Max(0, p.C[2]-p.C[0]) // c3 - c1, the concurrent L3 transfer
	ch := markov.New(p.Lambda[:])
	s1 := ch.AddState("w+c1", w+p.C[0])
	s2 := ch.AddState("c3-c1", seg)
	s3 := ch.AddState("r1", p.R[0])
	s4 := ch.AddState("r3", p.R[2])
	s5 := ch.AddState("rerun", seg)
	s6 := ch.AddState("r1'", p.R[0])

	ch.SetSuccess(s1, s2)
	ch.SetFailure(s1, 0, s3)
	ch.SetFailure(s1, 1, s4)
	ch.SetFailure(s1, 2, s4)

	ch.SetSuccess(s2, markov.Done)
	ch.SetFailure(s2, 0, s6)
	ch.SetFailure(s2, 1, s4)
	ch.SetFailure(s2, 2, s4)

	ch.SetSuccess(s3, s5)
	ch.SetFailure(s3, 0, s3)
	ch.SetFailure(s3, 1, s4)
	ch.SetFailure(s3, 2, s4)

	ch.SetSuccess(s4, s5)
	ch.SetAllFailures(s4, s4)

	ch.SetSuccess(s5, s1)
	ch.SetFailure(s5, 0, s3)
	ch.SetFailure(s5, 1, s4)
	ch.SetFailure(s5, 2, s4)

	ch.SetSuccess(s6, s2)
	ch.SetFailure(s6, 0, s6)
	ch.SetFailure(s6, 1, s4)
	ch.SetFailure(s6, 2, s4)

	return ch, s1, Interval{Work: w + seg}
}

// L2L3Interval builds the non-static L2L3 concurrent chain (Fig. 8). The
// current interval's parameters govern the ordinary states; the previous
// interval's parameters govern the grey states (recovery from checkpoints
// produced in interval i−1 and the rerun of its concurrently-executed work).
// Static evaluation passes cur == prev. In the L2L3 configuration transient
// f1 failures recover from the L2 checkpoint, so classes f1 and f2 share
// destinations.
func L2L3Interval(w float64, cur, prev Params) (*markov.Chain, int, Interval) {
	phaseBoth, phaseOne, full := clampSegments(cur)
	_, _, prevFull := clampSegments(prev)

	ch := markov.New(cur.Lambda[:])
	s1 := ch.AddState("w+c1", w+cur.C[0])
	s2 := ch.AddState("xfer-both", phaseBoth)
	s3 := ch.AddState("xfer-l3", phaseOne)
	s6 := ch.AddState("r2-cur", cur.R[1])
	s7 := ch.AddState("redo-xfer", full)
	r2p := ch.AddState("r2-prev", prev.R[1])
	r3p := ch.AddState("r3-prev", prev.R[2])
	s5 := ch.AddState("rerun-prev", prevFull)

	toPrev := func(id int) {
		ch.SetFailure(id, 0, r2p)
		ch.SetFailure(id, 1, r2p)
		ch.SetFailure(id, 2, r3p)
	}
	toCur := func(id int) {
		ch.SetFailure(id, 0, s6)
		ch.SetFailure(id, 1, s6)
		ch.SetFailure(id, 2, r3p)
	}

	ch.SetSuccess(s1, s2)
	toPrev(s1)
	ch.SetSuccess(s2, s3)
	toPrev(s2)
	ch.SetSuccess(s3, markov.Done)
	toCur(s3)
	ch.SetSuccess(s6, s7)
	toCur(s6)
	ch.SetSuccess(s7, markov.Done)
	toCur(s7)
	ch.SetSuccess(r2p, s5)
	toPrev(r2p)
	ch.SetSuccess(r3p, s5)
	ch.SetAllFailures(r3p, r3p)
	ch.SetSuccess(s5, s1)
	toPrev(s5)

	return ch, s1, Interval{Work: w + full}
}

// L1L2L3Interval builds the three-level concurrent chain of Fig. 4(c):
// f1 recovers from local L1 checkpoints, f2 from the RAID-5 group, f3 from
// remote storage.
func L1L2L3Interval(w float64, p Params) (*markov.Chain, int, Interval) {
	phaseBoth, phaseOne, full := clampSegments(p)

	ch := markov.New(p.Lambda[:])
	s1 := ch.AddState("w+c1", w+p.C[0])
	s2 := ch.AddState("xfer-both", phaseBoth)
	s3 := ch.AddState("xfer-l3", phaseOne)
	s6a := ch.AddState("r1-during-xfer", p.R[0])
	s6b := ch.AddState("r1-cur", p.R[0])
	s8 := ch.AddState("r2-cur", p.R[1])
	s7 := ch.AddState("redo-xfer", full)
	r1p := ch.AddState("r1-prev", p.R[0])
	r2p := ch.AddState("r2-prev", p.R[1])
	r3p := ch.AddState("r3-prev", p.R[2])
	s5 := ch.AddState("rerun-prev", full)

	toPrev := func(id int) {
		ch.SetFailure(id, 0, r1p)
		ch.SetFailure(id, 1, r2p)
		ch.SetFailure(id, 2, r3p)
	}
	toCur := func(id int) {
		ch.SetFailure(id, 0, s6b)
		ch.SetFailure(id, 1, s8)
		ch.SetFailure(id, 2, r3p)
	}

	ch.SetSuccess(s1, s2)
	toPrev(s1)

	// Phase A: current L1 exists, current L2/L3 in flight.
	ch.SetSuccess(s2, s3)
	ch.SetFailure(s2, 0, s6a)
	ch.SetFailure(s2, 1, r2p)
	ch.SetFailure(s2, 2, r3p)
	ch.SetSuccess(s6a, s2)
	ch.SetFailure(s6a, 0, s6a)
	ch.SetFailure(s6a, 1, r2p)
	ch.SetFailure(s6a, 2, r3p)

	// Phase B: current L2 complete; only L3 in flight.
	ch.SetSuccess(s3, markov.Done)
	toCur(s3)
	ch.SetSuccess(s6b, s7)
	toCur(s6b)
	ch.SetSuccess(s8, s7)
	toCur(s8)
	ch.SetSuccess(s7, markov.Done)
	toCur(s7)

	// Previous-interval recovery ladder.
	ch.SetSuccess(r1p, s5)
	toPrev(r1p)
	ch.SetSuccess(r2p, s5)
	ch.SetFailure(r2p, 0, r2p)
	ch.SetFailure(r2p, 1, r2p)
	ch.SetFailure(r2p, 2, r3p)
	ch.SetSuccess(r3p, s5)
	ch.SetAllFailures(r3p, r3p)
	ch.SetSuccess(s5, s1)
	toPrev(s5)

	return ch, s1, Interval{Work: w + full}
}

// EvalL1L3 returns the evaluated interval for work span w.
func EvalL1L3(w float64, p Params) (Interval, error) {
	ch, start, iv := L1L3Interval(w, p)
	t, err := ch.ExpectedTime(start)
	iv.ExpectedTime = t
	return iv, err
}

// EvalL2L3 returns the evaluated static L2L3 interval for work span w.
func EvalL2L3(w float64, p Params) (Interval, error) {
	return EvalL2L3Dynamic(w, p, p)
}

// EvalL2L3Dynamic returns the evaluated non-static L2L3 interval, with the
// current interval's predicted parameters and the previous interval's
// realized ones.
func EvalL2L3Dynamic(w float64, cur, prev Params) (Interval, error) {
	ch, start, iv := L2L3Interval(w, cur, prev)
	t, err := ch.ExpectedTime(start)
	iv.ExpectedTime = t
	return iv, err
}

// EvalL1L2L3 returns the evaluated three-level interval for work span w.
func EvalL1L2L3(w float64, p Params) (Interval, error) {
	ch, start, iv := L1L2L3Interval(w, p)
	t, err := ch.ExpectedTime(start)
	iv.ExpectedTime = t
	return iv, err
}
