package model

import (
	"fmt"
	"math"
)

// This file implements the classic single-level checkpoint-interval
// estimates the paper's related work builds on (Young '74, Daly '06) and
// Vaidya's overhead/latency decomposition. They serve two roles: as
// comparison baselines, and as closed-form anchors that the Markov
// machinery must agree with in the single-level limit (see tests).

// YoungInterval returns Young's first-order optimum work span
// w* = sqrt(2·δ/λ) for checkpoint cost δ and failure rate λ.
func YoungInterval(delta, lambda float64) (float64, error) {
	if delta <= 0 || lambda <= 0 {
		return 0, fmt.Errorf("model: Young interval needs positive δ and λ, got %v, %v", delta, lambda)
	}
	return math.Sqrt(2 * delta / lambda), nil
}

// DalyInterval returns Daly's higher-order estimate of the optimum work
// span for checkpoint cost δ and mean time between failures M = 1/λ:
//
//	w* = sqrt(2δM)·[1 + ⅓·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	w* = M                                                      otherwise
func DalyInterval(delta, lambda float64) (float64, error) {
	if delta <= 0 || lambda <= 0 {
		return 0, fmt.Errorf("model: Daly interval needs positive δ and λ, got %v, %v", delta, lambda)
	}
	m := 1 / lambda
	if delta >= 2*m {
		return m, nil
	}
	x := delta / (2 * m)
	return math.Sqrt(2*delta*m)*(1+math.Sqrt(x)/3+x/9) - delta, nil
}

// SingleLevelExpectedTime returns the exact expected runtime of one
// checkpoint interval under the classic single-level model: work w followed
// by a blocking checkpoint of cost δ, failures at rate λ, recovery cost r,
// restart from the last checkpoint. This is the closed form
//
//	E[T] = (1/λ + r)·(e^{λ(w+δ)} − 1) / e^{λ·r}... —
//
// rather than reciting a formula, it is built from the same Markov
// machinery (a two-state chain), making it the single-level limit the
// general solver must reproduce.
func SingleLevelExpectedTime(w, delta, r, lambda float64) (float64, error) {
	p := Params{
		Lambda: [3]float64{0, 0, lambda},
		C:      [3]float64{0, 0, delta},
		R:      [3]float64{0, 0, r},
	}
	// A Moody period with a single level-3 checkpoint is exactly the
	// classic model: w + δ blocking, recover r, re-run from the interval
	// start.
	iv, err := EvalMoody(w, MoodySchedule{3}, p)
	if err != nil {
		return 0, err
	}
	return iv.ExpectedTime, nil
}

// OptimizeSingleLevel numerically minimizes the single-level NET² over the
// work span, for comparison with Young's and Daly's closed forms.
func OptimizeSingleLevel(delta, r, lambda, wLo, wHi float64) (w, net2 float64, err error) {
	if delta <= 0 || lambda <= 0 {
		return 0, 0, fmt.Errorf("model: need positive δ and λ")
	}
	obj := func(w float64) float64 {
		t, err := SingleLevelExpectedTime(w, delta, r, lambda)
		if err != nil {
			return math.Inf(1)
		}
		return t / w
	}
	w, net2 = logGoldenSection(obj, wLo, wHi)
	if math.IsInf(net2, 1) {
		return 0, 0, fmt.Errorf("model: single-level search found no feasible point")
	}
	return w, net2, nil
}

// VaidyaOverheadRatio returns Vaidya's overhead ratio for a single-level
// scheme with checkpoint overhead δ (blocking part) and interval w under
// rate λ: r(w) = E[T]/w − 1, the fractional slowdown.
func VaidyaOverheadRatio(w, delta, r, lambda float64) (float64, error) {
	t, err := SingleLevelExpectedTime(w, delta, r, lambda)
	if err != nil {
		return 0, err
	}
	if w <= 0 {
		return 0, fmt.Errorf("model: non-positive work span")
	}
	return t/w - 1, nil
}
