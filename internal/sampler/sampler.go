// Package sampler implements AIC's hot-page selection (Section IV.E): hot
// pages are grouped by write-arrival time with threshold Tg, only the first
// page of each group enters a fixed-size Sample Buffer (SB), and Tg adapts —
// doubling when SB fills (merging groups and dropping now-redundant
// samples), halving when SB is more than half empty — to hold as many
// representative samples as possible at decision time.
package sampler

// Entry is one sampled hot page.
type Entry struct {
	Page    uint64
	Arrival float64
}

// DefaultTg is the initial grouping threshold in virtual seconds.
const DefaultTg = 0.01

// Sampler is the Sample Buffer plus its adaptive grouping threshold.
// It is not safe for concurrent use.
type Sampler struct {
	capacity int
	tg       float64
	adaptive bool
	entries  []Entry
	dropped  int
}

// New creates a sampler holding at most capacityPages samples (the paper
// uses an 8-MB SB, i.e. 2048 4-KiB pages). initialTg ≤ 0 selects DefaultTg.
func New(capacityPages int, initialTg float64) *Sampler {
	if capacityPages <= 0 {
		capacityPages = 2048
	}
	if initialTg <= 0 {
		initialTg = DefaultTg
	}
	return &Sampler{capacity: capacityPages, tg: initialTg, adaptive: true}
}

// SetAdaptive enables or disables Tg adaptation (disabled = the fixed-Tg
// ablation; the buffer still drops overflow samples).
func (s *Sampler) SetAdaptive(on bool) { s.adaptive = on }

// Tg returns the current grouping threshold.
func (s *Sampler) Tg() float64 { return s.tg }

// Len returns the number of buffered samples.
func (s *Sampler) Len() int { return len(s.entries) }

// Dropped returns how many group-leading pages could not be buffered since
// the last Reset (space-overhead accounting).
func (s *Sampler) Dropped() int { return s.dropped }

// Samples returns the buffered entries in arrival order. The slice is owned
// by the sampler; callers must not mutate it.
func (s *Sampler) Samples() []Entry { return s.entries }

// Observe records a hot-page first-write event. Arrival times must be
// non-decreasing (they come from the interval's write barrier). Only a page
// starting a new arrival group is buffered.
func (s *Sampler) Observe(page uint64, arrival float64) {
	if n := len(s.entries); n > 0 && arrival-s.entries[n-1].Arrival <= s.tg {
		return // same group as the last buffered page
	}
	if len(s.entries) >= s.capacity {
		if !s.adaptive {
			s.dropped++
			return
		}
		// SB full: keep doubling Tg — merging groups under the widening
		// threshold and dropping the samples made redundant — until the
		// incoming sample fits (paper's "double when SB fills" rule). Once
		// Tg spans from the oldest buffered arrival to the incoming one,
		// further doubling cannot merge anything more, so stop.
		for len(s.entries) >= s.capacity {
			if s.tg > arrival-s.entries[0].Arrival {
				break
			}
			s.tg *= 2
			s.compact()
		}
		if n := len(s.entries); n > 0 && arrival-s.entries[n-1].Arrival <= s.tg {
			return // merged into the trailing group
		}
		if len(s.entries) >= s.capacity {
			s.dropped++
			return
		}
	}
	s.entries = append(s.entries, Entry{Page: page, Arrival: arrival})
}

// compact re-applies the current Tg to the buffered samples, keeping only
// the first page of each merged group.
func (s *Sampler) compact() {
	if len(s.entries) == 0 {
		return
	}
	kept := s.entries[:1]
	last := s.entries[0].Arrival
	for _, e := range s.entries[1:] {
		if e.Arrival-last > s.tg {
			kept = append(kept, e)
			last = e.Arrival
		}
	}
	s.entries = kept
}

// AtDecision adapts Tg at a checkpoint-decision point: halve it when the
// buffer is more than half empty (finer future grouping), leave it
// otherwise. (Doubling happens eagerly on overflow in Observe.) It returns
// the samples available for JD/DI computation.
func (s *Sampler) AtDecision() []Entry {
	// Compare in floats: integer capacity/2 truncates to 0 at capacity 1,
	// which would disable halving and let Tg ratchet upward forever.
	if s.adaptive && float64(len(s.entries)) < float64(s.capacity)/2 {
		s.tg /= 2
		if s.tg < 1e-9 {
			s.tg = 1e-9
		}
	}
	return s.entries
}

// Reset clears the buffer for a new checkpoint interval, retaining the
// learned Tg.
func (s *Sampler) Reset() {
	s.entries = s.entries[:0]
	s.dropped = 0
}
