package sampler

import (
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	s := New(0, 0)
	if s.capacity != 2048 || s.Tg() != DefaultTg {
		t.Fatalf("defaults: cap=%d tg=%v", s.capacity, s.Tg())
	}
}

func TestGroupingByArrivalTime(t *testing.T) {
	s := New(16, 1.0)
	s.Observe(1, 0.0) // group 1 leader
	s.Observe(2, 0.5) // same group (gap ≤ Tg)
	s.Observe(3, 0.9) // still same group (vs last buffered leader? no —
	// grouping compares against the last buffered sample: 0.9-0.0 ≤ 1)
	s.Observe(4, 1.5) // new group (1.5-0.0 > 1)
	s.Observe(5, 2.0) // same group as 4
	s.Observe(6, 3.0) // new group (3.0-1.5 > 1)
	got := s.Samples()
	if len(got) != 3 || got[0].Page != 1 || got[1].Page != 4 || got[2].Page != 6 {
		t.Fatalf("samples = %v", got)
	}
}

func TestOverflowDoublesTgAndCompacts(t *testing.T) {
	s := New(4, 1.0)
	for i := 0; i < 4; i++ {
		s.Observe(uint64(i), float64(i)*1.5) // each its own group
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	// Buffer full; next distinct-group observation must double Tg (1→2)
	// and merge the 1.5-spaced groups (gap 1.5 ≤ 2).
	s.Observe(99, 6.0)
	if s.Tg() != 2.0 {
		t.Fatalf("Tg = %v, want doubled", s.Tg())
	}
	if s.Len() >= 4 {
		t.Fatalf("compact did not shrink buffer: %d", s.Len())
	}
	// Leader arrivals after compaction at Tg=2: 0, 3.0(page 2? arrivals
	// 0,1.5,3,4.5 → keep 0, 3, then 4.5 merges? 4.5-3=1.5 ≤ 2 merge) → {0,3}
	got := s.Samples()
	if got[0].Arrival != 0 || got[1].Arrival != 3.0 {
		t.Fatalf("compacted = %v", got)
	}
}

func TestAtDecisionHalvesWhenSparse(t *testing.T) {
	s := New(8, 1.0)
	s.Observe(1, 0)
	// 1 < 8/2 → halve.
	s.AtDecision()
	if s.Tg() != 0.5 {
		t.Fatalf("Tg = %v, want 0.5", s.Tg())
	}
	// Tg has a floor.
	for i := 0; i < 100; i++ {
		s.AtDecision()
	}
	if s.Tg() <= 0 {
		t.Fatal("Tg must stay positive")
	}
}

func TestAtDecisionKeepsTgWhenHealthy(t *testing.T) {
	s := New(4, 1.0)
	s.Observe(1, 0)
	s.Observe(2, 2)
	before := s.Tg()
	if got := s.AtDecision(); len(got) != 2 {
		t.Fatalf("decision samples = %v", got)
	}
	if s.Tg() != before {
		t.Fatal("Tg changed despite half-full buffer")
	}
}

func TestResetKeepsTg(t *testing.T) {
	s := New(4, 1.0)
	s.Observe(1, 0)
	s.Observe(2, 5)
	s.AtDecision() // may adjust Tg
	tg := s.Tg()
	s.Reset()
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
	if s.Tg() != tg {
		t.Fatal("reset must retain learned Tg")
	}
}

func TestDroppedCounting(t *testing.T) {
	s := New(2, 1e-6) // tiny Tg: every observation is a new group
	s.SetAdaptive(false)
	s.Observe(0, 0)
	s.Observe(1, 100)
	// Full and fixed-Tg: the overflow sample must be dropped (and counted).
	s.Observe(2, 200)
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestOverflowDoublesUntilSampleFits(t *testing.T) {
	// One doubling (1e-6 → 2e-6) merges nothing here; the paper's rule
	// keeps doubling while SB is full, so the overflow sample must end up
	// merged (arrival 200 joins the group once Tg spans it) — not dropped.
	s := New(2, 1e-6)
	s.Observe(0, 0)
	s.Observe(1, 100)
	s.Observe(2, 200)
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d after adaptive overflow", s.Dropped())
	}
	if s.Len() > 2 {
		t.Fatalf("len = %d exceeds capacity", s.Len())
	}
	if s.Tg() <= 2e-6 {
		t.Fatalf("Tg = %v, want repeated doubling", s.Tg())
	}
}

func TestSmallCapacityTgAdapts(t *testing.T) {
	// capacity == 1: integer capacity/2 is 0, which used to disable
	// halving entirely while overflow doubling kept ratcheting Tg upward.
	s := New(1, 1.0)
	s.AtDecision() // empty buffer < half capacity → halve
	if s.Tg() != 0.5 {
		t.Fatalf("Tg = %v, want 0.5 after halving at capacity 1", s.Tg())
	}
	s.Observe(1, 0)
	s.Observe(2, 10) // overflow: doubles until it merges, never panics
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if got := s.AtDecision(); len(got) != 1 {
		t.Fatalf("decision samples = %v", got)
	}
	// Buffer full (1 ≥ 1/2): Tg must not halve now.
	if s.Tg() < 0.5 {
		t.Fatalf("Tg = %v halved despite full buffer", s.Tg())
	}
}

// Property: the buffer never exceeds its capacity and arrivals stay sorted.
func TestInvariantsProperty(t *testing.T) {
	f := func(gaps []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		s := New(capacity, 0.5)
		now := 0.0
		for i, g := range gaps {
			now += float64(g) / 16
			s.Observe(uint64(i), now)
			if s.Len() > capacity {
				return false
			}
		}
		samples := s.Samples()
		for i := 1; i < len(samples); i++ {
			if samples[i].Arrival < samples[i-1].Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: consecutive buffered samples are separated by more than the
// final Tg would imply at the time of buffering — i.e., no two samples in
// the same group (checked under a static Tg, no overflow).
func TestGroupSeparationProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		s := New(1<<20, 1.0) // never overflows
		now := 0.0
		for i, g := range gaps {
			now += float64(g) / 64
			s.Observe(uint64(i), now)
		}
		samples := s.Samples()
		for i := 1; i < len(samples); i++ {
			if samples[i].Arrival-samples[i-1].Arrival <= s.Tg() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
