package delta

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func uvarintHead(stream []byte) (uint64, int) { return binary.Uvarint(stream) }

// Native fuzz targets: run as regression tests over the seed corpus in
// normal `go test`, and as coverage-guided fuzzers under `go test -fuzz`.

func FuzzDecode(f *testing.F) {
	source := []byte("seed source content 0123456789 seed source content")
	f.Add(source, Encode(source, source, 8))
	f.Add(source, Encode(source, []byte("unrelated"), 8))
	f.Add([]byte{}, []byte{0x00})
	f.Add(source, []byte{0x05, opRun, 0x05, 0xAA, opEnd})
	f.Fuzz(func(t *testing.T, src, stream []byte) {
		// Must never panic; errors are fine. A successful decode must match
		// the stream's declared target length exactly (Decode's contract),
		// which also bounds memory: run-length opcodes may legitimately
		// expand far beyond the stream size, but never beyond the header.
		out, err := Decode(src, stream)
		if err == nil {
			declared, n := uvarintHead(stream)
			if n <= 0 || uint64(len(out)) != declared {
				t.Fatalf("decoded %d bytes, header declares %d", len(out), declared)
			}
		}
	})
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("source"), []byte("target"), uint8(8))
	f.Add([]byte(""), []byte("only target"), uint8(4))
	f.Add(bytes.Repeat([]byte{0}, 512), bytes.Repeat([]byte{0}, 512), uint8(64))
	f.Fuzz(func(t *testing.T, src, tgt []byte, bsRaw uint8) {
		bs := int(bsRaw%128) + 1
		stream := Encode(src, tgt, bs)
		got, err := Decode(src, stream)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !bytes.Equal(got, tgt) && !(len(got) == 0 && len(tgt) == 0) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(tgt))
		}
	})
}

// FuzzPageAlignedParallel derives a page set from the fuzz input and checks
// the two hard invariants of the parallel pipeline: the parallel stream is
// byte-identical to the serial one, and both decoders reproduce the pages.
func FuzzPageAlignedParallel(f *testing.F) {
	f.Add([]byte("seed page content"), uint8(2), uint8(64))
	f.Add(bytes.Repeat([]byte{7}, 300), uint8(7), uint8(16))
	f.Add([]byte{}, uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, pRaw, szRaw uint8) {
		workers := int(pRaw%8) + 1
		pageSize := int(szRaw%96) + 8
		var updates []PageUpdate
		olds := map[uint64][]byte{}
		for i := 0; len(data) > 0; i++ {
			n := pageSize
			if n > len(data) {
				n = len(data)
			}
			newPage := data[:n]
			data = data[n:]
			u := PageUpdate{Index: uint64(i), New: newPage}
			switch i % 3 {
			case 0: // similar old version
				old := append([]byte(nil), newPage...)
				old[0] ^= 0xFF
				u.Old = old
				olds[u.Index] = old
			case 1: // unrelated old version
				old := bytes.Repeat([]byte{0xA5}, n)
				u.Old = old
				olds[u.Index] = old
			}
			updates = append(updates, u)
		}
		serial := EncodePageAligned(updates, 16)
		parallel := EncodePageAlignedParallel(updates, 16, workers)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("parallel stream differs from serial (%d vs %d bytes)", len(parallel), len(serial))
		}
		fetch := func(idx uint64) []byte { return olds[idx] }
		want, err := DecodePageAligned(serial, fetch)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		got, err := DecodePageAlignedParallel(serial, fetch, workers)
		if err != nil {
			t.Fatalf("parallel decode of own encoding rejected: %v", err)
		}
		for _, u := range updates {
			if !bytes.Equal(want[u.Index], u.New) || !bytes.Equal(got[u.Index], u.New) {
				t.Fatalf("page %d round trip mismatch", u.Index)
			}
		}
	})
}

// FuzzDecodePageAligned feeds arbitrary streams to both decoders: neither
// may panic, and they must agree on acceptance and content.
func FuzzDecodePageAligned(f *testing.F) {
	good := EncodePageAligned([]PageUpdate{
		{Index: 1, New: []byte("raw page")},
		{Index: 4, Old: bytes.Repeat([]byte{3}, 64), New: bytes.Repeat([]byte{3}, 64)},
	}, 16)
	f.Add(good)
	f.Add([]byte{0x02, 0x04, PageRaw, 0x01, 0xFF, 0x04, PageRaw, 0x00}) // duplicate index
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, stream []byte) {
		old := bytes.Repeat([]byte{3}, 64)
		fetch := func(uint64) []byte { return old }
		want, serr := DecodePageAligned(stream, fetch)
		got, perr := DecodePageAlignedParallel(stream, fetch, 4)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("decoders disagree: serial err=%v, parallel err=%v", serr, perr)
		}
		if serr != nil {
			return
		}
		if len(want) != len(got) {
			t.Fatalf("decoders produced %d vs %d pages", len(want), len(got))
		}
		for idx, page := range want {
			if !bytes.Equal(got[idx], page) {
				t.Fatalf("page %d differs between decoders", idx)
			}
		}
	})
}

func FuzzXORRoundTrip(f *testing.F) {
	f.Add([]byte("samesize"), []byte("sameSIZE"))
	f.Fuzz(func(t *testing.T, src, tgt []byte) {
		if len(src) != len(tgt) {
			if _, err := EncodeXOR(src, tgt); err == nil {
				t.Fatal("length mismatch accepted")
			}
			return
		}
		stream, err := EncodeXOR(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeXOR(src, stream)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tgt) && !(len(got) == 0 && len(tgt) == 0) {
			t.Fatal("XOR round trip mismatch")
		}
	})
}
