package delta

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func uvarintHead(stream []byte) (uint64, int) { return binary.Uvarint(stream) }

// Native fuzz targets: run as regression tests over the seed corpus in
// normal `go test`, and as coverage-guided fuzzers under `go test -fuzz`.

func FuzzDecode(f *testing.F) {
	source := []byte("seed source content 0123456789 seed source content")
	f.Add(source, Encode(source, source, 8))
	f.Add(source, Encode(source, []byte("unrelated"), 8))
	f.Add([]byte{}, []byte{0x00})
	f.Add(source, []byte{0x05, opRun, 0x05, 0xAA, opEnd})
	f.Fuzz(func(t *testing.T, src, stream []byte) {
		// Must never panic; errors are fine. A successful decode must match
		// the stream's declared target length exactly (Decode's contract),
		// which also bounds memory: run-length opcodes may legitimately
		// expand far beyond the stream size, but never beyond the header.
		out, err := Decode(src, stream)
		if err == nil {
			declared, n := uvarintHead(stream)
			if n <= 0 || uint64(len(out)) != declared {
				t.Fatalf("decoded %d bytes, header declares %d", len(out), declared)
			}
		}
	})
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("source"), []byte("target"), uint8(8))
	f.Add([]byte(""), []byte("only target"), uint8(4))
	f.Add(bytes.Repeat([]byte{0}, 512), bytes.Repeat([]byte{0}, 512), uint8(64))
	f.Fuzz(func(t *testing.T, src, tgt []byte, bsRaw uint8) {
		bs := int(bsRaw%128) + 1
		stream := Encode(src, tgt, bs)
		got, err := Decode(src, stream)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !bytes.Equal(got, tgt) && !(len(got) == 0 && len(tgt) == 0) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(tgt))
		}
	})
}

func FuzzXORRoundTrip(f *testing.F) {
	f.Add([]byte("samesize"), []byte("sameSIZE"))
	f.Fuzz(func(t *testing.T, src, tgt []byte) {
		if len(src) != len(tgt) {
			if _, err := EncodeXOR(src, tgt); err == nil {
				t.Fatal("length mismatch accepted")
			}
			return
		}
		stream, err := EncodeXOR(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeXOR(src, stream)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tgt) && !(len(got) == 0 && len(tgt) == 0) {
			t.Fatal("XOR round trip mismatch")
		}
	})
}
