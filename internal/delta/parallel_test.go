package delta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"aic/internal/numeric"
)

// randomUpdates builds a page set with a randomized hot/raw mix: light-edit
// hot pages (delta pays off), rewritten hot pages (raw fallback), and new
// pages without a previous version.
func randomUpdates(rng *numeric.RNG, n, pageSize int) ([]PageUpdate, map[uint64][]byte) {
	updates := make([]PageUpdate, 0, n)
	olds := make(map[uint64][]byte)
	for i := 0; i < n; i++ {
		newPage := make([]byte, pageSize)
		rng.Bytes(newPage)
		u := PageUpdate{Index: uint64(i * 2), New: newPage} // ascending, unique
		switch rng.Intn(3) {
		case 0: // hot page, light edits: delta mode
			old := append([]byte(nil), newPage...)
			for k := 0; k < 4; k++ {
				old[rng.Intn(pageSize)] ^= byte(1 + rng.Intn(255))
			}
			u.Old = old
			olds[u.Index] = old
		case 1: // hot page, full rewrite: raw fallback
			old := make([]byte, pageSize)
			rng.Bytes(old)
			u.Old = old
			olds[u.Index] = old
		}
		updates = append(updates, u)
	}
	return updates, olds
}

func TestParallelEncodeMatchesSerial(t *testing.T) {
	rng := numeric.NewRNG(77)
	for _, pageSize := range []int{128, 512, 4096} {
		for _, n := range []int{0, 1, 2, 5, 33, 128} {
			updates, _ := randomUpdates(rng, n, pageSize)
			serial, serialStats := EncodePageAlignedStats(updates, DefaultBlockSize)
			for _, workers := range []int{1, 2, 8} {
				parallel, parallelStats := EncodePageAlignedParallelStats(updates, DefaultBlockSize, workers)
				if !bytes.Equal(serial, parallel) {
					t.Fatalf("pageSize=%d n=%d workers=%d: parallel stream differs from serial (%d vs %d bytes)",
						pageSize, n, workers, len(parallel), len(serial))
				}
				if parallelStats != serialStats {
					t.Fatalf("pageSize=%d n=%d workers=%d: stats differ: %+v vs %+v",
						pageSize, n, workers, parallelStats, serialStats)
				}
			}
		}
	}
}

func TestParallelEncodeDefaultParallelism(t *testing.T) {
	rng := numeric.NewRNG(78)
	updates, _ := randomUpdates(rng, 40, 1024)
	serial := EncodePageAligned(updates, DefaultBlockSize)
	if got := EncodePageAlignedParallel(updates, DefaultBlockSize, 0); !bytes.Equal(serial, got) {
		t.Fatal("GOMAXPROCS-parallel stream differs from serial")
	}
	if got := EncodePageAlignedParallel(updates, DefaultBlockSize, 100); !bytes.Equal(serial, got) {
		t.Fatal("over-provisioned parallel stream differs from serial")
	}
}

func TestParallelDecodeMatchesSerial(t *testing.T) {
	rng := numeric.NewRNG(79)
	updates, olds := randomUpdates(rng, 50, 2048)
	fetch := func(idx uint64) []byte { return olds[idx] }
	stream := EncodePageAligned(updates, DefaultBlockSize)
	want, err := DecodePageAligned(stream, fetch)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got, err := DecodePageAlignedParallel(stream, fetch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pages, want %d", workers, len(got), len(want))
		}
		for idx, page := range want {
			if !bytes.Equal(got[idx], page) {
				t.Fatalf("workers=%d: page %d mismatch", workers, idx)
			}
		}
	}
}

func TestParallelDecodeMissingOldVersion(t *testing.T) {
	rng := numeric.NewRNG(80)
	old := make([]byte, 512)
	rng.Bytes(old)
	edited := append([]byte(nil), old...)
	edited[3] ^= 0xFF
	stream := EncodePageAligned([]PageUpdate{{Index: 9, Old: old, New: edited}}, DefaultBlockSize)
	if _, err := DecodePageAlignedParallel(stream, func(uint64) []byte { return nil }, 4); err == nil {
		t.Fatal("decode without the previous version must fail")
	}
}

// rawFrameStream hand-builds a page-aligned stream of raw frames with the
// given indexes, for exercising the ordering validation.
func rawFrameStream(indexes []uint64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(indexes)))
	for _, idx := range indexes {
		out = binary.AppendUvarint(out, idx)
		out = append(out, PageRaw)
		out = binary.AppendUvarint(out, 3)
		out = append(out, 0xAA, 0xBB, 0xCC)
	}
	return out
}

func TestDecodeRejectsDuplicateAndDescendingIndexes(t *testing.T) {
	cases := []struct {
		name    string
		indexes []uint64
	}{
		{"duplicate", []uint64{4, 4}},
		{"descending", []uint64{7, 3}},
		{"duplicate-later", []uint64{1, 5, 5}},
	}
	fetch := func(uint64) []byte { return nil }
	for _, tc := range cases {
		stream := rawFrameStream(tc.indexes)
		if _, err := DecodePageAligned(stream, fetch); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: serial decode: got %v, want ErrCorrupt", tc.name, err)
		}
		if _, err := DecodePageAlignedParallel(stream, fetch, 4); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: parallel decode: got %v, want ErrCorrupt", tc.name, err)
		}
	}
	// Ascending unique indexes stay accepted.
	if _, err := DecodePageAligned(rawFrameStream([]uint64{1, 5, 9}), fetch); err != nil {
		t.Fatalf("ascending stream rejected: %v", err)
	}
}

func TestStatsReflectEmittedModes(t *testing.T) {
	rng := numeric.NewRNG(81)
	lightOld := make([]byte, 4096)
	rng.Bytes(lightOld)
	lightNew := append([]byte(nil), lightOld...)
	lightNew[100] ^= 0x5A
	rewrittenOld := make([]byte, 4096)
	rng.Bytes(rewrittenOld)
	rewrittenNew := make([]byte, 4096)
	rng.Bytes(rewrittenNew)
	freshNew := make([]byte, 4096)
	rng.Bytes(freshNew)

	updates := []PageUpdate{
		{Index: 0, Old: lightOld, New: lightNew},         // delta pays off → hot
		{Index: 1, Old: rewrittenOld, New: rewrittenNew}, // raw fallback → raw
		{Index: 2, Old: nil, New: freshNew},              // no previous version → raw
	}
	_, st := EncodePageAlignedStats(updates, DefaultBlockSize)
	if st.HotPages != 1 || st.RawPages != 2 {
		t.Fatalf("stats must count emitted modes: hot=%d raw=%d, want 1/2", st.HotPages, st.RawPages)
	}
	if st.InputBytes != 3*4096 {
		t.Fatalf("InputBytes = %d", st.InputBytes)
	}
}

func TestEncoderReuseMatchesOneShot(t *testing.T) {
	rng := numeric.NewRNG(82)
	var e Encoder
	for i := 0; i < 20; i++ {
		n := 64 + rng.Intn(4096)
		src := make([]byte, n)
		rng.Bytes(src)
		dst := append([]byte(nil), src...)
		for k := 0; k < 1+rng.Intn(9); k++ {
			dst[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
		}
		want := Encode(src, dst, DefaultBlockSize)
		got := e.Encode(src, dst, DefaultBlockSize)
		if !bytes.Equal(want, got) {
			t.Fatalf("iteration %d: reused encoder stream differs", i)
		}
		decoded, err := Decode(src, got)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(decoded, dst) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
	e.Reset()
	if got := e.Encode([]byte("abcdefgh"), []byte("abcdefgh"), 4); len(got) == 0 {
		t.Fatal("encoder unusable after Reset")
	}
}

func TestAppendEncodePreservesPrefix(t *testing.T) {
	src := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	dst := []byte("the quick brown cat jumps over the lazy dog 0123456789")
	var e Encoder
	prefix := []byte{0xDE, 0xAD}
	out := e.AppendEncode(append([]byte(nil), prefix...), src, dst, 8)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(out[2:], Encode(src, dst, 8)) {
		t.Fatal("appended stream differs from one-shot Encode")
	}
}
