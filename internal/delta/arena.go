package delta

import "sync"

// arenaChunkMin is the smallest chunk a frameArena allocates; frames larger
// than this get a dedicated chunk.
const arenaChunkMin = 256 << 10

// frameArena hands out stable frame buffers carved from large pooled
// chunks, so the parallel encoder's one-copy-per-page stops hitting the
// allocator once warm. A chunk is never grown in place — every slice handed
// out stays valid until the arena is released — which is the property that
// lets workers publish frames into the shared assembly slice while the
// arena keeps allocating.
//
// A frameArena is not safe for concurrent use; the encoder draws one per
// worker and releases them only after stream assembly has copied the frames
// out.
type frameArena struct {
	chunks [][]byte
	cur    int // chunk currently being filled
}

// copyFrame stores a copy of p in the arena and returns the stable copy.
func (a *frameArena) copyFrame(p []byte) []byte {
	n := len(p)
	for {
		if a.cur < len(a.chunks) {
			c := a.chunks[a.cur]
			if cap(c)-len(c) >= n {
				off := len(c)
				a.chunks[a.cur] = c[:off+n]
				dst := c[off : off+n : off+n]
				copy(dst, p)
				return dst
			}
			a.cur++
			continue
		}
		size := arenaChunkMin
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]byte, 0, size))
	}
}

// reset forgets every frame while keeping the chunks for reuse.
func (a *frameArena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.cur = 0
}

// arenaPool recycles frame arenas across encode runs — the "across Builder
// runs" half of the scratch reuse: a steady-state checkpoint loop reuses
// the same chunks every interval.
var arenaPool = sync.Pool{New: func() any { return new(frameArena) }}

func getArena() *frameArena { return arenaPool.Get().(*frameArena) }

// putArena resets and returns an arena to the pool. Frames it handed out
// must no longer be referenced.
func putArena(a *frameArena) {
	a.reset()
	arenaPool.Put(a)
}
