package delta

// Content-defined chunking for the chunk-level dedup store: the same
// rolling Adler-style weak hash the delta codec uses to find candidate
// blocks here decides chunk boundaries, so boundary positions depend only
// on the bytes inside a small sliding window. Identical content reaching
// the chunker at different offsets (a checkpoint payload shifted by a
// varying-length header, the same pages in two processes' images) cuts at
// the same content positions once the streams re-synchronize, which is
// what makes cross-chain deduplication by chunk identity work at all.

// Default chunking geometry. Avg is a statistical target (the boundary
// mask fires with probability 1/Avg per byte); Min and Max are hard
// bounds.
const (
	DefaultMinChunk = 2 << 10  // 2 KiB
	DefaultAvgChunk = 8 << 10  // 8 KiB, rounded to a power of two
	DefaultMaxChunk = 64 << 10 // 64 KiB
)

// chunkWindow is the rolling-hash window the boundary test looks at. It is
// deliberately small: a boundary must depend on only the last few dozen
// bytes so that streams with different prefixes re-converge quickly.
const chunkWindow = 48

// ChunkConfig parameterizes the chunker. The zero value selects the
// defaults above. Avg is rounded up to a power of two (the boundary test
// is a mask comparison); Min is clamped to at least the hash window and
// Max to at least 2·Min, so every chunk but the last satisfies
// Min ≤ len ≤ Max.
type ChunkConfig struct {
	Min, Avg, Max int
}

// Normalized returns the effective configuration Chunks will use: defaults
// filled in, Avg rounded to a power of two, Min/Max clamped. Callers that
// persist or compare chunk geometry should normalize first.
func (c ChunkConfig) Normalized() ChunkConfig { return c.withDefaults() }

func (c ChunkConfig) withDefaults() ChunkConfig {
	if c.Min <= 0 {
		c.Min = DefaultMinChunk
	}
	if c.Avg <= 0 {
		c.Avg = DefaultAvgChunk
	}
	if c.Max <= 0 {
		c.Max = DefaultMaxChunk
	}
	if c.Min < chunkWindow {
		c.Min = chunkWindow
	}
	// Round Avg up to a power of two for the mask test.
	avg := 1
	for avg < c.Avg {
		avg <<= 1
	}
	c.Avg = avg
	if c.Max < 2*c.Min {
		c.Max = 2 * c.Min
	}
	return c
}

// Chunk is one chunker-delimited span of the input.
type Chunk struct {
	Off, Len int
	// Natural is set when the boundary after this chunk was chosen by the
	// rolling hash (content-defined). It is clear for boundaries forced by
	// the Max bound or by the end of the input — the cuts that do NOT
	// re-synchronize across shifted streams.
	Natural bool
}

// Chunks splits data into content-defined chunks. The result partitions
// data exactly (offsets are contiguous, lengths sum to len(data)); empty
// input yields no chunks. Chunking is deterministic, and a boundary
// depends only on the chunkWindow bytes preceding it plus the Min/Max
// bounds relative to the previous boundary — the shift-convergence
// property FuzzChunker pins down.
func Chunks(data []byte, cfg ChunkConfig) []Chunk {
	cfg = cfg.withDefaults()
	mask := uint32(cfg.Avg - 1)
	var out []Chunk
	start := 0
	for start < len(data) {
		rem := len(data) - start
		if rem <= cfg.Min {
			out = append(out, Chunk{Off: start, Len: rem})
			break
		}
		end := start + cfg.Max
		if end > len(data) {
			end = len(data)
		}
		// Seed the window with the chunkWindow bytes ending at the first
		// eligible cut position, then roll forward one byte at a time.
		h := newWeakHash(data[start+cfg.Min-chunkWindow : start+cfg.Min])
		cut, natural := end, false
		for pos := start + cfg.Min; pos < end; pos++ {
			if h.sum()&mask == mask {
				cut, natural = pos, true
				break
			}
			h.roll(data[pos-chunkWindow], data[pos])
		}
		out = append(out, Chunk{Off: start, Len: cut - start, Natural: natural})
		start = cut
	}
	return out
}
