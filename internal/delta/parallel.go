package delta

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the concurrent half of the Xdelta3-PA pipeline: the paper's
// design runs checkpoint compression on dedicated cores of a multicore node
// (Section III), and because every page of the page-aligned stream is
// delta-coded independently, the encode fans out embarrassingly. Workers
// encode pages into per-page frames; a single assembler stitches them in
// ascending index order, so the parallel stream is byte-identical to the
// serial one — checkpoints stay portable across both paths.

// resolveParallelism normalizes a worker-count knob: n ≤ 0 selects
// GOMAXPROCS, and the count never exceeds the number of work items.
func resolveParallelism(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// EncodePageAlignedParallel produces exactly the stream EncodePageAligned
// produces, using up to parallelism workers (≤ 0 selects GOMAXPROCS; 1 is
// the serial path). Page updates may alias shared memory: workers only read
// them.
func EncodePageAlignedParallel(updates []PageUpdate, blockSize, parallelism int) []byte {
	out, _ := encodePageAligned(updates, blockSize, parallelism)
	return out
}

// EncodePageAlignedParallelStats is EncodePageAlignedParallel plus the
// per-operation statistics of EncodePageAlignedStats (identical numbers —
// the modes emitted do not depend on the worker count).
func EncodePageAlignedParallelStats(updates []PageUpdate, blockSize, parallelism int) ([]byte, Stats) {
	return encodePageAligned(updates, blockSize, parallelism)
}

// encodePageAligned dispatches between the serial and worker-pool encoders.
func encodePageAligned(updates []PageUpdate, blockSize, parallelism int) ([]byte, Stats) {
	sorted := sortUpdates(updates)
	parallelism = resolveParallelism(parallelism, len(sorted))
	if parallelism <= 1 {
		return encodePageAlignedSerial(sorted, blockSize)
	}

	frames := make([][]byte, len(sorted))
	modes := make([]byte, len(sorted))
	arenas := make([]*frameArena, parallelism)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		arenas[w] = getArena()
		go func(ar *frameArena) {
			defer wg.Done()
			e := GetEncoder()
			defer PutEncoder(e)
			var scratch []byte // reused frame buffer; frames get arena copies
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sorted) {
					return
				}
				scratch, modes[i] = appendPageFrame(e, scratch[:0], sorted[i], blockSize)
				frames[i] = ar.copyFrame(scratch)
			}
		}(arenas[w])
	}
	wg.Wait()

	// Assemble: count header + frames in ascending index order, exactly as
	// the serial encoder writes them.
	total := binary.MaxVarintLen64
	for _, f := range frames {
		total += len(f)
	}
	out := make([]byte, 0, total)
	out = binary.AppendUvarint(out, uint64(len(sorted)))
	var st Stats
	for i, f := range frames {
		out = append(out, f...)
		st.count(sorted[i], modes[i])
	}
	// Frames are copied out; the arenas (and their chunks) can be recycled
	// for the next encode run.
	for _, ar := range arenas {
		putArena(ar)
	}
	st.OutputBytes = len(out)
	return out, st
}

// DecodePageAlignedParallel reverses EncodePageAligned using up to
// parallelism workers (≤ 0 selects GOMAXPROCS). The frame scan and all
// validation run up front on the calling goroutine; only the per-page
// payload decodes fan out, so fetchOld must be safe for concurrent calls
// (a pure read of previous checkpoint state qualifies).
func DecodePageAlignedParallel(stream []byte, fetchOld func(index uint64) []byte, parallelism int) (map[uint64][]byte, error) {
	frames, err := scanPageFrames(stream)
	if err != nil {
		return nil, err
	}
	parallelism = resolveParallelism(parallelism, len(frames))
	if parallelism <= 1 {
		pages := make(map[uint64][]byte, len(frames))
		for _, f := range frames {
			decoded, err := decodeFrame(f, fetchOld)
			if err != nil {
				return nil, err
			}
			pages[f.idx] = decoded
		}
		return pages, nil
	}

	decoded := make([][]byte, len(frames))
	errs := make([]error, len(frames))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frames) {
					return
				}
				decoded[i], errs[i] = decodeFrame(frames[i], fetchOld)
			}
		}()
	}
	wg.Wait()

	pages := make(map[uint64][]byte, len(frames))
	for i, f := range frames {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pages[f.idx] = decoded[i]
	}
	return pages, nil
}
