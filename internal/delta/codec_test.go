package delta

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"aic/internal/numeric"
)

func TestEncodeDecodeRoundTripBasic(t *testing.T) {
	source := []byte("the quick brown fox jumps over the lazy dog, again and again and again")
	target := []byte("the quick brown cat jumps over the lazy dog, again and again and AGAIN")
	d := Encode(source, target, 8)
	got, err := Decode(source, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip failed:\n got %q\nwant %q", got, target)
	}
}

func TestEncodeIdenticalInputIsTiny(t *testing.T) {
	rng := numeric.NewRNG(1)
	data := make([]byte, 64*1024)
	rng.Bytes(data)
	d := Encode(data, data, DefaultBlockSize)
	if len(d) > 64 {
		t.Fatalf("delta of identical 64 KiB images is %d bytes", len(d))
	}
	got, err := Decode(data, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode mismatch")
	}
}

func TestEncodeUnrelatedInputNearTargetSize(t *testing.T) {
	rng := numeric.NewRNG(2)
	source := make([]byte, 16*1024)
	target := make([]byte, 16*1024)
	rng.Bytes(source)
	rng.Bytes(target)
	d := Encode(source, target, DefaultBlockSize)
	if len(d) < len(target) {
		t.Fatalf("random target compressed to %d < %d — impossible", len(d), len(target))
	}
	if len(d) > len(target)+len(target)/100+64 {
		t.Fatalf("overhead too large: %d for %d target", len(d), len(target))
	}
	got, err := Decode(source, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("decode mismatch")
	}
}

func TestEncodeSparseModification(t *testing.T) {
	// A page with a handful of modified bytes must compress drastically.
	rng := numeric.NewRNG(3)
	source := make([]byte, 4096)
	rng.Bytes(source)
	target := append([]byte(nil), source...)
	for _, off := range []int{100, 2000, 3905} {
		target[off] ^= 0xff
	}
	d := Encode(source, target, DefaultBlockSize)
	if len(d) > 600 {
		t.Fatalf("sparse modification produced %d-byte delta", len(d))
	}
	got, err := Decode(source, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("decode mismatch")
	}
}

func TestEncodeShiftedContent(t *testing.T) {
	// rsync-family codecs find matches at arbitrary offsets: content moved
	// by a non-block-multiple must still compress well.
	rng := numeric.NewRNG(4)
	source := make([]byte, 8192)
	rng.Bytes(source)
	target := append([]byte("odd-length-prefix:"), source...)
	d := Encode(source, target, DefaultBlockSize)
	if len(d) > 1024 {
		t.Fatalf("shifted content produced %d-byte delta", len(d))
	}
	got, err := Decode(source, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("decode mismatch")
	}
}

func TestEncodeEmptyCases(t *testing.T) {
	for _, tc := range []struct{ src, tgt []byte }{
		{nil, nil},
		{[]byte("abc"), nil},
		{nil, []byte("abc")},
		{[]byte("abc"), []byte("abc")},
	} {
		d := Encode(tc.src, tc.tgt, DefaultBlockSize)
		got, err := Decode(tc.src, d)
		if err != nil {
			t.Fatalf("src=%q tgt=%q: %v", tc.src, tc.tgt, err)
		}
		if !bytes.Equal(got, tc.tgt) && !(len(got) == 0 && len(tc.tgt) == 0) {
			t.Fatalf("src=%q tgt=%q: got %q", tc.src, tc.tgt, got)
		}
	}
}

func TestEncodeTargetShorterThanBlock(t *testing.T) {
	source := []byte("0123456789abcdef0123456789abcdef")
	target := []byte("xyz")
	d := Encode(source, target, 16)
	got, err := Decode(source, d)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("got %q err %v", got, err)
	}
}

// Property: Decode(source, Encode(source, target)) == target for arbitrary
// byte slices and block sizes.
func TestRoundTripProperty(t *testing.T) {
	f := func(source, target []byte, bsRaw uint8) bool {
		bs := int(bsRaw%128) + 1
		d := Encode(source, target, bs)
		got, err := Decode(source, d)
		if err != nil {
			return false
		}
		if len(got) == 0 && len(target) == 0 {
			return true
		}
		return bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: round trip over structured inputs (partially shared content),
// the regime the codec actually runs in.
func TestRoundTripSharedContentProperty(t *testing.T) {
	rng := numeric.NewRNG(5)
	f := func(seed uint32) bool {
		r := numeric.NewRNG(uint64(seed))
		n := 512 + r.Intn(8192)
		source := make([]byte, n)
		rng.Bytes(source)
		target := append([]byte(nil), source...)
		// Random splice edits.
		for e := 0; e < 1+r.Intn(5); e++ {
			off := r.Intn(len(target))
			span := r.Intn(len(target) - off)
			chunk := make([]byte, span)
			r.Bytes(chunk)
			copy(target[off:], chunk)
		}
		d := Encode(source, target, DefaultBlockSize)
		got, err := Decode(source, d)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptStreams(t *testing.T) {
	source := []byte("some source bytes for copy ops")
	cases := map[string][]byte{
		"empty":              {},
		"truncated header":   {0x80},
		"no end marker":      {0x05},
		"unknown opcode":     {0x00, 0xAA},
		"length mismatch":    {0x05, opEnd},
		"copy out of bounds": append([]byte{0x05, opCopy}, 0x63, 0x05, opEnd),
		"add beyond stream":  {0x05, opAdd, 0x7f, 0x01, opEnd},
	}
	for name, stream := range cases {
		if _, err := Decode(source, stream); err == nil {
			t.Fatalf("%s: corrupt stream accepted", name)
		}
	}
}

func TestDecodeFuzzResilience(t *testing.T) {
	// Randomly mutated valid streams must never panic; they either decode
	// (harmlessly) or return an error.
	rng := numeric.NewRNG(6)
	source := make([]byte, 2048)
	rng.Bytes(source)
	target := append([]byte(nil), source...)
	copy(target[512:], make([]byte, 64))
	valid := Encode(source, target, DefaultBlockSize)
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutated stream: %v", r)
				}
			}()
			_, _ = Decode(source, mut)
		}()
	}
}

func TestXORRoundTrip(t *testing.T) {
	rng := numeric.NewRNG(7)
	source := make([]byte, 4096)
	rng.Bytes(source)
	target := append([]byte(nil), source...)
	for _, off := range []int{0, 17, 4095} {
		target[off] ^= 0x55
	}
	stream, err := EncodeXOR(source, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) > 128 {
		t.Fatalf("XOR-RLE of 3 changed bytes is %d bytes", len(stream))
	}
	got, err := DecodeXOR(source, stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("XOR round trip mismatch")
	}
}

func TestXORRoundTripProperty(t *testing.T) {
	f := func(source []byte, flips []uint16) bool {
		target := append([]byte(nil), source...)
		for _, fo := range flips {
			if len(target) == 0 {
				break
			}
			target[int(fo)%len(target)] ^= 0xA5
		}
		stream, err := EncodeXOR(source, target)
		if err != nil {
			return false
		}
		got, err := DecodeXOR(source, stream)
		if err != nil {
			return false
		}
		return bytes.Equal(got, target) || (len(got) == 0 && len(target) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXORLengthMismatch(t *testing.T) {
	if _, err := EncodeXOR([]byte("ab"), []byte("abc")); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := DecodeXOR([]byte("ab"), []byte{0x05}); err == nil {
		t.Fatal("mismatched decode accepted")
	}
}

func TestBackwardExtensionImprovesAlignment(t *testing.T) {
	// A match starting mid-block: the backward extension must absorb the
	// aligned prefix into the COPY instead of emitting it as a literal.
	rng := numeric.NewRNG(42)
	source := make([]byte, 8192)
	rng.Bytes(source)
	// Target: first 10 bytes replaced, rest identical — the first block
	// boundary match begins at 64, but bytes 10..63 also match.
	target := append([]byte(nil), source...)
	chunk := make([]byte, 10)
	rng.Bytes(chunk)
	copy(target, chunk)
	d := Encode(source, target, 64)
	// With backward extension the literal is ~10 bytes + opcodes; without
	// it, at least a full block of literals leaks through.
	if len(d) > 64 {
		t.Fatalf("delta %d bytes; backward extension not effective", len(d))
	}
	got, err := Decode(source, d)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestRunLengthLiterals(t *testing.T) {
	// A target that is mostly a fresh zeroed region (no match in source):
	// the run coder must collapse it.
	rng := numeric.NewRNG(50)
	source := make([]byte, 4096)
	rng.Bytes(source)
	target := make([]byte, 4096) // all zeros, nothing matches source blocks
	d := Encode(source, target, DefaultBlockSize)
	if len(d) > 64 {
		t.Fatalf("zero page encoded in %d bytes", len(d))
	}
	got, err := Decode(source, d)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("round trip: %v", err)
	}
	// Mixed literal: random head, long constant tail.
	target2 := make([]byte, 4096)
	rng.Bytes(target2[:1024])
	for i := 1024; i < 4096; i++ {
		target2[i] = 0x7F
	}
	d2 := Encode(source, target2, DefaultBlockSize)
	if len(d2) > 1200 {
		t.Fatalf("mixed page encoded in %d bytes", len(d2))
	}
	got2, err := Decode(source, d2)
	if err != nil || !bytes.Equal(got2, target2) {
		t.Fatalf("mixed round trip: %v", err)
	}
}

func TestRunOpcodeCorruption(t *testing.T) {
	// Hand-built streams exercising opRun's validation.
	source := []byte{}
	// target length 5, run of 999999 exceeds it.
	bad := []byte{0x05, opRun, 0xBF, 0x84, 0x3D, 0xFF, opEnd}
	if _, err := Decode(source, bad); err == nil {
		t.Fatal("oversized run accepted")
	}
	// Missing run value byte.
	bad2 := []byte{0x05, opRun, 0x05}
	if _, err := Decode(source, bad2); err == nil {
		t.Fatal("truncated run accepted")
	}
}

func TestDecodeBombRejected(t *testing.T) {
	// A header declaring an absurd target must be rejected before any
	// large allocation (the fuzz-found decompression bomb).
	bomb := []byte{0xce, 0xce, 0xce, 0xce, 0xce, 0xce, 0x30, opRun, 0x96, 0xd8, 0x94, 0xda, 0x30}
	if _, err := Decode(nil, bomb); err == nil {
		t.Fatal("decompression bomb accepted")
	}
}
