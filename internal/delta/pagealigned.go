package delta

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Page payload modes of the page-aligned stream.
const (
	PageRaw   = 0x00 // page stored verbatim (no previous version existed)
	PageDelta = 0x01 // page stored as a delta against its previous version
	PageXOR   = 0x02 // page stored as XOR+RLE against its previous version
)

// PageUpdate is one dirty page to be checkpointed. Old is the page's content
// in the previous checkpoint, or nil when the page is new there (a dirty but
// not hot page) — such pages are stored raw, exactly as Xdelta3-PA does.
type PageUpdate struct {
	Index uint64
	Old   []byte
	New   []byte
}

// EncodePageAligned produces the Xdelta3-PA stream for the given page
// updates: each hot page (Old present) is delta-compressed against its old
// version independently, enabling the per-page cost estimation the AIC
// predictor relies on. Pages are emitted in ascending index order.
func EncodePageAligned(updates []PageUpdate, blockSize int) []byte {
	sorted := append([]PageUpdate(nil), updates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	out := make([]byte, 0, 64)
	out = binary.AppendUvarint(out, uint64(len(sorted)))
	for _, u := range sorted {
		out = binary.AppendUvarint(out, u.Index)
		if u.Old == nil {
			out = append(out, PageRaw)
			out = binary.AppendUvarint(out, uint64(len(u.New)))
			out = append(out, u.New...)
			continue
		}
		d := Encode(u.Old, u.New, blockSize)
		if len(d) >= len(u.New) {
			// Delta did not pay off (page rewritten with unrelated data):
			// fall back to raw storage, as real delta compressors do.
			out = append(out, PageRaw)
			out = binary.AppendUvarint(out, uint64(len(u.New)))
			out = append(out, u.New...)
			continue
		}
		out = append(out, PageDelta)
		out = binary.AppendUvarint(out, uint64(len(d)))
		out = append(out, d...)
	}
	return out
}

// EncodePageAlignedXOR is the simple-compressor ablation: hot pages are
// XOR+RLE-coded against their previous versions (as in earlier compressed-
// difference checkpointing) instead of rsync-delta-coded; the framing is
// identical to EncodePageAligned.
func EncodePageAlignedXOR(updates []PageUpdate) []byte {
	sorted := append([]PageUpdate(nil), updates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	out := make([]byte, 0, 64)
	out = binary.AppendUvarint(out, uint64(len(sorted)))
	for _, u := range sorted {
		out = binary.AppendUvarint(out, u.Index)
		var payload []byte
		mode := byte(PageRaw)
		if u.Old != nil && len(u.Old) == len(u.New) {
			if x, err := EncodeXOR(u.Old, u.New); err == nil && len(x) < len(u.New) {
				mode, payload = PageXOR, x
			}
		}
		if payload == nil {
			payload = u.New
		}
		out = append(out, mode)
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// DecodePageAligned reverses EncodePageAligned. fetchOld must return the
// previous version of a page stored in delta mode; returning nil reports
// the page as unavailable and fails decoding.
func DecodePageAligned(stream []byte, fetchOld func(index uint64) []byte) (map[uint64][]byte, error) {
	count, n := binary.Uvarint(stream)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing page count", ErrCorrupt)
	}
	stream = stream[n:]
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16 // corrupt counts must not drive huge allocations
	}
	pages := make(map[uint64][]byte, capHint)
	for i := uint64(0); i < count; i++ {
		idx, n := binary.Uvarint(stream)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad page index", ErrCorrupt)
		}
		stream = stream[n:]
		if len(stream) == 0 {
			return nil, fmt.Errorf("%w: missing page mode", ErrCorrupt)
		}
		mode := stream[0]
		stream = stream[1:]
		plen, n := binary.Uvarint(stream)
		if n <= 0 || plen > uint64(len(stream[n:])) {
			return nil, fmt.Errorf("%w: bad payload length for page %d", ErrCorrupt, idx)
		}
		stream = stream[n:]
		payload := stream[:plen]
		stream = stream[plen:]
		switch mode {
		case PageRaw:
			pages[idx] = append([]byte(nil), payload...)
		case PageDelta:
			old := fetchOld(idx)
			if old == nil {
				return nil, fmt.Errorf("delta: page %d needs missing previous version", idx)
			}
			decoded, err := Decode(old, payload)
			if err != nil {
				return nil, fmt.Errorf("page %d: %w", idx, err)
			}
			pages[idx] = decoded
		case PageXOR:
			old := fetchOld(idx)
			if old == nil {
				return nil, fmt.Errorf("delta: page %d needs missing previous version", idx)
			}
			decoded, err := DecodeXOR(old, payload)
			if err != nil {
				return nil, fmt.Errorf("page %d: %w", idx, err)
			}
			pages[idx] = decoded
		default:
			return nil, fmt.Errorf("%w: unknown page mode %#x", ErrCorrupt, mode)
		}
	}
	return pages, nil
}

// Stats summarizes a compression operation for the predictor feedback loop
// and for the Table 3 / Fig. 2 experiments.
type Stats struct {
	InputBytes  int // bytes of target data considered
	OutputBytes int // bytes of compressed stream produced
	HotPages    int // pages compressed as deltas
	RawPages    int // pages stored verbatim
}

// Ratio returns OutputBytes/InputBytes, the paper's compression ratio
// (lower is better); 0 input yields 0.
func (s Stats) Ratio() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	return float64(s.OutputBytes) / float64(s.InputBytes)
}

// EncodePageAlignedStats encodes and also reports per-operation statistics.
func EncodePageAlignedStats(updates []PageUpdate, blockSize int) ([]byte, Stats) {
	out := EncodePageAligned(updates, blockSize)
	st := Stats{OutputBytes: len(out)}
	for _, u := range updates {
		st.InputBytes += len(u.New)
		if u.Old != nil {
			st.HotPages++
		} else {
			st.RawPages++
		}
	}
	return out, st
}
