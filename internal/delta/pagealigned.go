package delta

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Page payload modes of the page-aligned stream.
const (
	PageRaw   = 0x00 // page stored verbatim (no previous version existed)
	PageDelta = 0x01 // page stored as a delta against its previous version
	PageXOR   = 0x02 // page stored as XOR+RLE against its previous version
)

// PageUpdate is one dirty page to be checkpointed. Old is the page's content
// in the previous checkpoint, or nil when the page is new there (a dirty but
// not hot page) — such pages are stored raw, exactly as Xdelta3-PA does.
type PageUpdate struct {
	Index uint64
	Old   []byte
	New   []byte
}

// sortUpdates returns a copy of updates in ascending index order — the
// order both encoders emit and the decoder enforces.
func sortUpdates(updates []PageUpdate) []PageUpdate {
	sorted := append([]PageUpdate(nil), updates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	return sorted
}

// appendPageFrame encodes one page update — index, mode byte, payload — to
// dst and reports the mode actually emitted. It is the unit of work both
// the serial and the parallel encoder share, which is what keeps their
// streams byte-identical.
func appendPageFrame(e *Encoder, dst []byte, u PageUpdate, blockSize int) ([]byte, byte) {
	dst = binary.AppendUvarint(dst, u.Index)
	if u.Old != nil {
		d := e.Encode(u.Old, u.New, blockSize)
		if len(d) < len(u.New) {
			dst = append(dst, PageDelta)
			dst = binary.AppendUvarint(dst, uint64(len(d)))
			return append(dst, d...), PageDelta
		}
		// Delta did not pay off (page rewritten with unrelated data):
		// fall back to raw storage, as real delta compressors do.
	}
	dst = append(dst, PageRaw)
	dst = binary.AppendUvarint(dst, uint64(len(u.New)))
	return append(dst, u.New...), PageRaw
}

// EncodePageAligned produces the Xdelta3-PA stream for the given page
// updates: each hot page (Old present) is delta-compressed against its old
// version independently, enabling the per-page cost estimation the AIC
// predictor relies on. Pages are emitted in ascending index order. Page
// indexes must be unique (duplicates would be rejected on decode).
func EncodePageAligned(updates []PageUpdate, blockSize int) []byte {
	out, _ := encodePageAlignedSerial(sortUpdates(updates), blockSize)
	return out
}

// encodePageAlignedSerial encodes the already-sorted updates on the calling
// goroutine, tracking the per-page modes actually emitted.
func encodePageAlignedSerial(sorted []PageUpdate, blockSize int) ([]byte, Stats) {
	e := GetEncoder()
	defer PutEncoder(e)

	out := make([]byte, 0, 64)
	out = binary.AppendUvarint(out, uint64(len(sorted)))
	var st Stats
	for _, u := range sorted {
		var mode byte
		out, mode = appendPageFrame(e, out, u, blockSize)
		st.count(u, mode)
	}
	st.OutputBytes = len(out)
	return out, st
}

// EncodePageAlignedXOR is the simple-compressor ablation: hot pages are
// XOR+RLE-coded against their previous versions (as in earlier compressed-
// difference checkpointing) instead of rsync-delta-coded; the framing is
// identical to EncodePageAligned.
func EncodePageAlignedXOR(updates []PageUpdate) []byte {
	sorted := sortUpdates(updates)
	out := make([]byte, 0, 64)
	out = binary.AppendUvarint(out, uint64(len(sorted)))
	for _, u := range sorted {
		out = binary.AppendUvarint(out, u.Index)
		var payload []byte
		mode := byte(PageRaw)
		if u.Old != nil && len(u.Old) == len(u.New) {
			if x, err := EncodeXOR(u.Old, u.New); err == nil && len(x) < len(u.New) {
				mode, payload = PageXOR, x
			}
		}
		if payload == nil {
			payload = u.New
		}
		out = append(out, mode)
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// pageFrame is one parsed (but not yet decoded) page entry of the
// page-aligned stream; payload aliases the input stream.
type pageFrame struct {
	idx     uint64
	mode    byte
	payload []byte
}

// scanPageFrames splits a page-aligned stream into frames, validating the
// framing: varint integrity, payload bounds, known modes, and strictly
// ascending page indexes (both encoders emit ascending unique indexes, so
// duplicates or reordering can only be corruption).
func scanPageFrames(stream []byte) ([]pageFrame, error) {
	count, n := binary.Uvarint(stream)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing page count", ErrCorrupt)
	}
	stream = stream[n:]
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16 // corrupt counts must not drive huge allocations
	}
	frames := make([]pageFrame, 0, capHint)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		idx, n := binary.Uvarint(stream)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad page index", ErrCorrupt)
		}
		stream = stream[n:]
		if i > 0 && idx <= prev {
			return nil, fmt.Errorf("%w: page index %d after %d breaks ascending order", ErrCorrupt, idx, prev)
		}
		prev = idx
		if len(stream) == 0 {
			return nil, fmt.Errorf("%w: missing page mode", ErrCorrupt)
		}
		mode := stream[0]
		stream = stream[1:]
		if mode != PageRaw && mode != PageDelta && mode != PageXOR {
			return nil, fmt.Errorf("%w: unknown page mode %#x", ErrCorrupt, mode)
		}
		plen, n := binary.Uvarint(stream)
		if n <= 0 || plen > uint64(len(stream[n:])) {
			return nil, fmt.Errorf("%w: bad payload length for page %d", ErrCorrupt, idx)
		}
		stream = stream[n:]
		frames = append(frames, pageFrame{idx: idx, mode: mode, payload: stream[:plen]})
		stream = stream[plen:]
	}
	return frames, nil
}

// decodeFrame materializes one page from its frame. It is shared by the
// serial and parallel decoders.
func decodeFrame(f pageFrame, fetchOld func(index uint64) []byte) ([]byte, error) {
	switch f.mode {
	case PageRaw:
		return append([]byte(nil), f.payload...), nil
	case PageDelta, PageXOR:
		old := fetchOld(f.idx)
		if old == nil {
			return nil, fmt.Errorf("delta: page %d needs missing previous version", f.idx)
		}
		var decoded []byte
		var err error
		if f.mode == PageDelta {
			decoded, err = Decode(old, f.payload)
		} else {
			decoded, err = DecodeXOR(old, f.payload)
		}
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", f.idx, err)
		}
		return decoded, nil
	default:
		return nil, fmt.Errorf("%w: unknown page mode %#x", ErrCorrupt, f.mode)
	}
}

// DecodePageAligned reverses EncodePageAligned. fetchOld must return the
// previous version of a page stored in delta mode; returning nil reports
// the page as unavailable and fails decoding. Streams whose page indexes
// are not strictly ascending are rejected as corrupt.
func DecodePageAligned(stream []byte, fetchOld func(index uint64) []byte) (map[uint64][]byte, error) {
	frames, err := scanPageFrames(stream)
	if err != nil {
		return nil, err
	}
	pages := make(map[uint64][]byte, len(frames))
	for _, f := range frames {
		decoded, err := decodeFrame(f, fetchOld)
		if err != nil {
			return nil, err
		}
		pages[f.idx] = decoded
	}
	return pages, nil
}

// Stats summarizes a compression operation for the predictor feedback loop
// and for the Table 3 / Fig. 2 experiments.
type Stats struct {
	InputBytes  int // bytes of target data considered
	OutputBytes int // bytes of compressed stream produced
	HotPages    int // pages actually emitted as deltas
	RawPages    int // pages stored verbatim (new pages and failed deltas)
}

// count accrues one page into the stats given the mode the encoder actually
// emitted — a hot page whose delta did not pay off counts as raw.
func (s *Stats) count(u PageUpdate, mode byte) {
	s.InputBytes += len(u.New)
	if mode == PageDelta || mode == PageXOR {
		s.HotPages++
	} else {
		s.RawPages++
	}
}

// Ratio returns OutputBytes/InputBytes, the paper's compression ratio
// (lower is better); 0 input yields 0.
func (s Stats) Ratio() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	return float64(s.OutputBytes) / float64(s.InputBytes)
}

// EncodePageAlignedStats encodes and also reports per-operation statistics.
// Page counts reflect the modes actually emitted: a page with a previous
// version whose delta fell back to raw storage is counted as raw.
func EncodePageAlignedStats(updates []PageUpdate, blockSize int) ([]byte, Stats) {
	return encodePageAlignedSerial(sortUpdates(updates), blockSize)
}
