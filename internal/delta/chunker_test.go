package delta

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkPartition asserts the chunks exactly tile data and respect the
// configured bounds, and returns the reassembled bytes.
func checkPartition(t *testing.T, data []byte, cfg ChunkConfig, chunks []Chunk) []byte {
	t.Helper()
	norm := cfg.withDefaults()
	var out []byte
	off := 0
	for i, c := range chunks {
		if c.Off != off {
			t.Fatalf("chunk %d starts at %d, want %d", i, c.Off, off)
		}
		if c.Len <= 0 || c.Len > norm.Max {
			t.Fatalf("chunk %d length %d outside (0, %d]", i, c.Len, norm.Max)
		}
		if i < len(chunks)-1 && c.Len < norm.Min {
			t.Fatalf("non-final chunk %d length %d below min %d", i, c.Len, norm.Min)
		}
		out = append(out, data[c.Off:c.Off+c.Len]...)
		off += c.Len
	}
	if off != len(data) {
		t.Fatalf("chunks cover %d bytes, want %d", off, len(data))
	}
	return out
}

func TestChunksEmptyAndTiny(t *testing.T) {
	if got := Chunks(nil, ChunkConfig{}); len(got) != 0 {
		t.Fatalf("empty input produced %d chunks", len(got))
	}
	data := []byte("tiny")
	chunks := Chunks(data, ChunkConfig{})
	if len(chunks) != 1 || chunks[0].Len != len(data) || chunks[0].Natural {
		t.Fatalf("tiny input: got %+v", chunks)
	}
}

func TestChunksRoundTripAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := ChunkConfig{Min: 128, Avg: 512, Max: 2048}
	for _, n := range []int{1, 100, 4 << 10, 100 << 10} {
		data := make([]byte, n)
		rng.Read(data)
		chunks := Chunks(data, cfg)
		if got := checkPartition(t, data, cfg, chunks); !bytes.Equal(got, data) {
			t.Fatalf("n=%d: reassembly differs", n)
		}
	}
}

func TestChunksDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64<<10)
	rng.Read(data)
	a := Chunks(data, ChunkConfig{})
	b := Chunks(data, ChunkConfig{})
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChunksShiftConvergence is the dedup-enabling property on realistic
// data: the same content behind different-length prefixes chunks
// identically once the streams re-synchronize at a natural boundary, so
// shared chunks get shared IDs.
func TestChunksShiftConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shared := make([]byte, 128<<10)
	rng.Read(shared)
	cfg := ChunkConfig{Min: 256, Avg: 1024, Max: 4096}
	base := Chunks(shared, cfg)
	for _, shift := range []int{1, 17, 255, 1000, 5000} {
		prefix := make([]byte, shift)
		rng.Read(prefix)
		shifted := Chunks(append(append([]byte(nil), prefix...), shared...), cfg)
		common, ok := commonStart(base, shifted, shift)
		if !ok {
			t.Fatalf("shift %d: streams never re-converged", shift)
		}
		if common > 5*4096 {
			t.Fatalf("shift %d: converged only at offset %d", shift, common)
		}
		assertSameSuffix(t, base, shifted, shift, common)
	}
}

// commonStart finds the smallest content offset (in the unshifted stream)
// that begins a chunk in both chunkings.
func commonStart(base, shifted []Chunk, shift int) (int, bool) {
	starts := make(map[int]bool, len(base))
	for _, c := range base {
		starts[c.Off] = true
	}
	for _, c := range shifted {
		if off := c.Off - shift; off >= 0 && starts[off] {
			return off, true
		}
	}
	return 0, false
}

// assertSameSuffix checks both chunkings are identical from content offset
// common on: once both chunkers stand at the same content position, the
// remainder is a pure function of the remaining bytes.
func assertSameSuffix(t *testing.T, base, shifted []Chunk, shift, common int) {
	t.Helper()
	var a, b []Chunk
	for _, c := range base {
		if c.Off >= common {
			a = append(a, c)
		}
	}
	for _, c := range shifted {
		if c.Off-shift >= common {
			b = append(b, Chunk{Off: c.Off - shift, Len: c.Len, Natural: c.Natural})
		}
	}
	if len(a) != len(b) {
		t.Fatalf("suffix chunk counts differ after offset %d: %d vs %d", common, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("suffix chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// FuzzChunker fuzzes the three chunker contracts at once: exact
// partition/round-trip, determinism, and shift convergence (whenever the
// shifted and unshifted chunkings share any natural chunk start, their
// chunkings beyond it must be identical — the content-defined property).
func FuzzChunker(f *testing.F) {
	f.Add([]byte("hello world"), uint8(3))
	f.Add(bytes.Repeat([]byte{0}, 5000), uint8(1))
	f.Add(bytes.Repeat([]byte("abcdefg"), 1000), uint8(200))
	seed := make([]byte, 20<<10)
	rand.New(rand.NewSource(1)).Read(seed)
	f.Add(seed, uint8(37))
	f.Fuzz(func(t *testing.T, data []byte, shift uint8) {
		cfg := ChunkConfig{Min: 64, Avg: 256, Max: 1024}
		chunks := Chunks(data, cfg)
		var out []byte
		off := 0
		for i, c := range chunks {
			if c.Off != off || c.Len <= 0 {
				t.Fatalf("chunk %d = %+v does not tile at %d", i, c, off)
			}
			if c.Len > 1024 || (i < len(chunks)-1 && c.Len < 64) {
				t.Fatalf("chunk %d length %d out of bounds", i, c.Len)
			}
			out = append(out, data[c.Off:c.Off+c.Len]...)
			off = c.Off + c.Len
		}
		if !bytes.Equal(out, data) {
			t.Fatal("reassembly differs from input")
		}
		again := Chunks(data, cfg)
		if len(again) != len(chunks) {
			t.Fatal("chunking is not deterministic")
		}
		for i := range again {
			if again[i] != chunks[i] {
				t.Fatal("chunking is not deterministic")
			}
		}
		if len(data) == 0 || shift == 0 {
			return
		}
		prefix := bytes.Repeat([]byte{0xA5}, int(shift))
		shifted := Chunks(append(prefix, data...), cfg)
		if common, ok := commonStartNatural(chunks, shifted, int(shift)); ok {
			var a, b []Chunk
			for _, c := range chunks {
				if c.Off >= common {
					a = append(a, c)
				}
			}
			for _, c := range shifted {
				if c.Off-int(shift) >= common {
					b = append(b, Chunk{Off: c.Off - int(shift), Len: c.Len, Natural: c.Natural})
				}
			}
			if len(a) != len(b) {
				t.Fatalf("diverged after common start %d: %d vs %d chunks", common, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("diverged after common start %d at chunk %d: %+v vs %+v", common, i, a[i], b[i])
				}
			}
		}
	})
}

// commonStartNatural is commonStart restricted to starts that follow a
// natural boundary in both streams (a start forced by the Max bound does
// not imply the chunkers are in synchronized states).
func commonStartNatural(base, shifted []Chunk, shift int) (int, bool) {
	starts := make(map[int]bool)
	for i := 1; i < len(base); i++ {
		if base[i-1].Natural {
			starts[base[i].Off] = true
		}
	}
	for i := 1; i < len(shifted); i++ {
		if off := shifted[i].Off - shift; off >= 0 && shifted[i-1].Natural && starts[off] {
			return off, true
		}
	}
	return 0, false
}
