// Package delta implements the delta-compression substrate of AIC: an
// rsync-style block-hash codec in the family of Xdelta3 (weak rolling hash
// to find candidate blocks, strong hash to confirm, greedy forward match
// extension, COPY/ADD instruction stream), an XOR+run-length baseline as
// used by earlier compressed-difference checkpointing, and the page-aligned
// wrapper (Xdelta3-PA) that differences each hot page against its previous
// checkpointed version.
package delta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// DefaultBlockSize is the source-block granularity of the codec. Small
// blocks favour the 4-KiB-page-aligned use; whole-image callers pass a
// larger size.
const DefaultBlockSize = 64

// Instruction opcodes of the delta stream.
const (
	opEnd  = 0x00
	opCopy = 0x01
	opAdd  = 0x02
	opRun  = 0x03 // run-length literal: one byte value repeated N times
)

// runThreshold is the minimum same-byte run worth encoding as opRun
// (shorter runs cost more in opcodes than they save).
const runThreshold = 24

var (
	// ErrCorrupt reports a malformed delta stream.
	ErrCorrupt = errors.New("delta: corrupt stream")
	// ErrLengthMismatch reports XOR inputs of different lengths.
	ErrLengthMismatch = errors.New("delta: source/target length mismatch")
	// ErrTooLarge reports a stream whose declared target exceeds
	// MaxDecodeTarget.
	ErrTooLarge = errors.New("delta: declared target exceeds decode limit")
)

// MaxDecodeTarget bounds the output size Decode will produce, protecting
// against decompression bombs in corrupt or hostile streams. The default
// comfortably covers this library's checkpoints (full images are ≤ tens of
// MiB); raise it for larger payloads.
var MaxDecodeTarget uint64 = 1 << 28

// weakHash is a rolling Adler-style checksum over a fixed window.
type weakHash struct {
	a, b uint32
	n    uint32
}

func newWeakHash(window []byte) weakHash {
	// Unrolled 8-wide: with s = Σ c_i and t = Σ i·c_i the checksum halves
	// are a = s and b = n·s − t, so the loop reduces to two running sums
	// whose per-chunk weights are compile-time constants — no per-byte
	// multiply, and the eight loads per iteration vectorize.
	var s, t uint32
	i := 0
	for ; i+8 <= len(window); i += 8 {
		w := window[i : i+8 : i+8]
		c0, c1, c2, c3 := uint32(w[0]), uint32(w[1]), uint32(w[2]), uint32(w[3])
		c4, c5, c6, c7 := uint32(w[4]), uint32(w[5]), uint32(w[6]), uint32(w[7])
		cs := c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7
		t += uint32(i)*cs + c1 + 2*c2 + 3*c3 + 4*c4 + 5*c5 + 6*c6 + 7*c7
		s += cs
	}
	for ; i < len(window); i++ {
		c := uint32(window[i])
		s += c
		t += uint32(i) * c
	}
	n := uint32(len(window))
	return weakHash{a: s, b: n*s - t, n: n}
}

// roll slides the window one byte: out leaves, in enters.
func (h *weakHash) roll(out, in byte) {
	h.a += uint32(in) - uint32(out)
	h.b += h.a - h.n*uint32(out)
}

func (h weakHash) sum() uint32 { return (h.b&0xffff)<<16 | (h.a & 0xffff) }

// strongHash is a word-at-a-time FNV-style hash: eight bytes enter the
// multiply chain per step instead of one, followed by a finalizer that
// mixes word-level structure back across the lanes. Collision quality only
// needs to be good enough to pre-filter — candidate blocks are confirmed by
// byte comparison before they are used — and the encoder's output depends
// only on that byte comparison, so the hash function is free to change
// without affecting the stream format.
func strongHash(p []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for len(p) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(p)) * prime
		p = p[8:]
	}
	for _, c := range p {
		h = (h ^ uint64(c)) * prime
	}
	// splitmix64-style avalanche: word-wide XORs above leave low bytes
	// correlated; two shift-xor-multiply rounds spread them.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return h
}

type sourceBlock struct {
	strong uint64
	offset int
}

// Encoder is a reusable delta encoder: it owns the weak-hash source index
// and the output scratch buffer, so repeated encodes — the per-page hot
// loop of the page-aligned wrapper — stop allocating once warm. The zero
// value is ready to use. An Encoder is not safe for concurrent use; draw
// one per goroutine from GetEncoder/PutEncoder instead.
type Encoder struct {
	heads map[uint32]int32 // weak hash → first candidate in chain
	tails map[uint32]int32 // weak hash → last candidate (O(1) ordered insert)
	chain []chainEntry     // arena of candidates, linked per weak hash
	buf   []byte           // output scratch for Encode
}

// chainEntry is one indexed source block; next links same-weak-hash
// candidates in insertion (= ascending offset) order, so match selection is
// deterministic and identical to a slice-based index.
type chainEntry struct {
	blk  sourceBlock
	next int32
}

// encoderPool recycles Encoders across pages and goroutines; the parallel
// page-aligned encoder draws one per worker.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled Encoder for burst use; return it with
// PutEncoder when done.
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// PutEncoder returns an Encoder to the pool. Buffers previously returned by
// its Encode method must no longer be referenced.
func PutEncoder(e *Encoder) { encoderPool.Put(e) }

// indexSource (re)builds the weak-hash index over source blocks, reusing
// the maps and candidate arena of previous encodes.
func (e *Encoder) indexSource(source []byte, blockSize int) {
	e.chain = e.chain[:0]
	if e.heads == nil {
		hint := len(source)/blockSize + 1
		e.heads = make(map[uint32]int32, hint)
		e.tails = make(map[uint32]int32, hint)
	} else {
		clear(e.heads)
		clear(e.tails)
	}
	for off := 0; off+blockSize <= len(source); off += blockSize {
		blk := source[off : off+blockSize]
		w := newWeakHash(blk).sum()
		id := int32(len(e.chain))
		e.chain = append(e.chain, chainEntry{blk: sourceBlock{strong: strongHash(blk), offset: off}, next: -1})
		if tail, ok := e.tails[w]; ok {
			e.chain[tail].next = id
		} else {
			e.heads[w] = id
		}
		e.tails[w] = id
	}
}

// Encode produces a delta that reconstructs target from source. blockSize
// ≤ 0 selects DefaultBlockSize. The stream begins with the target length so
// Decode can pre-allocate and validate.
func Encode(source, target []byte, blockSize int) []byte {
	e := GetEncoder()
	out := append([]byte(nil), e.Encode(source, target, blockSize)...)
	PutEncoder(e)
	return out
}

// Encode produces the delta into the Encoder's internal buffer and returns
// it. The returned slice is valid only until the next call on this Encoder;
// callers that keep the stream must copy it (or use AppendEncode).
func (e *Encoder) Encode(source, target []byte, blockSize int) []byte {
	e.buf = e.AppendEncode(e.buf[:0], source, target, blockSize)
	return e.buf
}

// AppendEncode appends the delta stream reconstructing target from source
// to dst and returns the extended slice. It is the allocation-free core of
// Encode: byte-for-byte the same stream, without fresh output buffers or a
// fresh source index per call.
func (e *Encoder) AppendEncode(dst, source, target []byte, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	out := dst
	out = binary.AppendUvarint(out, uint64(len(target)))

	if len(target) == 0 {
		out = append(out, opEnd)
		return out
	}

	e.indexSource(source, blockSize)

	emitPlain := func(lit []byte) {
		if len(lit) == 0 {
			return
		}
		out = append(out, opAdd)
		out = binary.AppendUvarint(out, uint64(len(lit)))
		out = append(out, lit...)
	}
	// emitAdd splits literal stretches around long same-byte runs, coding
	// the runs with opRun (zeroed or constant-filled regions are common in
	// freshly allocated pages).
	emitAdd := func(lit []byte) {
		start := 0
		i := 0
		for i < len(lit) {
			j := i + 1
			for j < len(lit) && lit[j] == lit[i] {
				j++
			}
			if j-i >= runThreshold {
				emitPlain(lit[start:i])
				out = append(out, opRun)
				out = binary.AppendUvarint(out, uint64(j-i))
				out = append(out, lit[i])
				start = j
			}
			i = j
		}
		emitPlain(lit[start:])
	}

	pos, litStart := 0, 0
	if len(e.chain) > 0 && len(target) >= blockSize {
		h := newWeakHash(target[:blockSize])
		for pos+blockSize <= len(target) {
			match := -1
			if head, ok := e.heads[h.sum()]; ok {
				win := target[pos : pos+blockSize]
				sh := strongHash(win)
				for id := head; id >= 0; id = e.chain[id].next {
					c := e.chain[id].blk
					if c.strong == sh && bytes.Equal(source[c.offset:c.offset+blockSize], win) {
						match = c.offset
						break
					}
				}
			}
			if match < 0 {
				if pos+blockSize < len(target) {
					h.roll(target[pos], target[pos+blockSize])
				}
				pos++
				continue
			}
			// Extend the match forward beyond the block, and backward into
			// the pending literal (matches rarely begin exactly on a block
			// boundary).
			length := blockSize + commonPrefixLen(target[pos+blockSize:], source[match+blockSize:])
			back := 0
			for pos-back > litStart && match-back > 0 &&
				target[pos-back-1] == source[match-back-1] {
				back++
			}
			emitAdd(target[litStart : pos-back])
			out = append(out, opCopy)
			out = binary.AppendUvarint(out, uint64(match-back))
			out = binary.AppendUvarint(out, uint64(length+back))
			pos += length
			litStart = pos
			if pos+blockSize <= len(target) {
				h = newWeakHash(target[pos : pos+blockSize])
			}
		}
	}
	emitAdd(target[litStart:])
	out = append(out, opEnd)
	return out
}

// Reset drops the Encoder's retained index and buffers, releasing memory
// after encoding unusually large sources.
func (e *Encoder) Reset() {
	e.heads, e.tails, e.chain, e.buf = nil, nil, nil, nil
}

// commonPrefixLen returns the length of the longest common prefix of a and
// b, comparing eight bytes per step; the first differing word pinpoints the
// mismatch via its trailing zero bits. It drives forward match extension,
// where matches regularly run hundreds of bytes past the seed block.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)/8
		}
	}
	for ; i < n; i++ {
		if a[i] != b[i] {
			break
		}
	}
	return i
}

// Decode reconstructs the target from source and a delta stream produced by
// Encode. It validates all offsets and the declared target length.
func Decode(source, delta []byte) ([]byte, error) {
	targetLen, n := binary.Uvarint(delta)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing target length", ErrCorrupt)
	}
	delta = delta[n:]
	if targetLen > MaxDecodeTarget {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, targetLen, MaxDecodeTarget)
	}
	// Cap the pre-allocation: a corrupt header must not drive a huge
	// allocation before validation fails.
	capHint := targetLen
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	for {
		if len(delta) == 0 {
			return nil, fmt.Errorf("%w: missing end marker", ErrCorrupt)
		}
		if uint64(len(out)) > targetLen {
			return nil, fmt.Errorf("%w: output exceeds declared length %d", ErrCorrupt, targetLen)
		}
		op := delta[0]
		delta = delta[1:]
		switch op {
		case opEnd:
			if uint64(len(out)) != targetLen {
				return nil, fmt.Errorf("%w: declared length %d, decoded %d", ErrCorrupt, targetLen, len(out))
			}
			return out, nil
		case opCopy:
			off, n := binary.Uvarint(delta)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad copy offset", ErrCorrupt)
			}
			delta = delta[n:]
			length, n := binary.Uvarint(delta)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad copy length", ErrCorrupt)
			}
			delta = delta[n:]
			end := off + length
			if end < off || end > uint64(len(source)) {
				return nil, fmt.Errorf("%w: copy [%d,%d) outside source of %d", ErrCorrupt, off, end, len(source))
			}
			if length > targetLen-uint64(len(out)) {
				return nil, fmt.Errorf("%w: copy overruns declared length %d", ErrCorrupt, targetLen)
			}
			out = append(out, source[off:end]...)
		case opAdd:
			length, n := binary.Uvarint(delta)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad add length", ErrCorrupt)
			}
			delta = delta[n:]
			if length > uint64(len(delta)) {
				return nil, fmt.Errorf("%w: add of %d exceeds stream", ErrCorrupt, length)
			}
			if length > targetLen-uint64(len(out)) {
				return nil, fmt.Errorf("%w: add overruns declared length %d", ErrCorrupt, targetLen)
			}
			out = append(out, delta[:length]...)
			delta = delta[length:]
		case opRun:
			length, n := binary.Uvarint(delta)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad run length", ErrCorrupt)
			}
			delta = delta[n:]
			if len(delta) == 0 {
				return nil, fmt.Errorf("%w: missing run value", ErrCorrupt)
			}
			if length > targetLen-uint64(len(out)) {
				return nil, fmt.Errorf("%w: run of %d exceeds target %d", ErrCorrupt, length, targetLen)
			}
			v := delta[0]
			delta = delta[1:]
			for k := uint64(0); k < length; k++ {
				out = append(out, v)
			}
		default:
			return nil, fmt.Errorf("%w: unknown opcode %#x", ErrCorrupt, op)
		}
	}
}

// EncodeXOR is the simple baseline used by earlier incremental-checkpoint
// compression (Plank's compressed differences): XOR the equal-length images
// and run-length encode the zero runs. The stream alternates
// (zero-run-length, literal-length, literal XOR bytes).
func EncodeXOR(source, target []byte) ([]byte, error) {
	if len(source) != len(target) {
		return nil, ErrLengthMismatch
	}
	out := make([]byte, 0, 16)
	out = binary.AppendUvarint(out, uint64(len(target)))
	i := 0
	for i < len(target) {
		zs := i
		for i < len(target) && source[i] == target[i] {
			i++
		}
		out = binary.AppendUvarint(out, uint64(i-zs))
		ls := i
		for i < len(target) && source[i] != target[i] {
			i++
		}
		out = binary.AppendUvarint(out, uint64(i-ls))
		for j := ls; j < i; j++ {
			out = append(out, source[j]^target[j])
		}
	}
	return out, nil
}

// DecodeXOR reverses EncodeXOR given the same source image.
func DecodeXOR(source, stream []byte) ([]byte, error) {
	total, n := binary.Uvarint(stream)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing length", ErrCorrupt)
	}
	if total != uint64(len(source)) {
		return nil, ErrLengthMismatch
	}
	stream = stream[n:]
	out := make([]byte, 0, total)
	for uint64(len(out)) < total {
		zrun, n := binary.Uvarint(stream)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad zero run", ErrCorrupt)
		}
		stream = stream[n:]
		if uint64(len(out))+zrun > total {
			return nil, fmt.Errorf("%w: zero run overflows", ErrCorrupt)
		}
		out = append(out, source[len(out):uint64(len(out))+zrun]...)
		lrun, n := binary.Uvarint(stream)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad literal run", ErrCorrupt)
		}
		stream = stream[n:]
		if lrun > uint64(len(stream)) || uint64(len(out))+lrun > total {
			return nil, fmt.Errorf("%w: literal run overflows", ErrCorrupt)
		}
		for j := uint64(0); j < lrun; j++ {
			out = append(out, source[len(out)]^stream[j])
		}
		stream = stream[lrun:]
	}
	return out, nil
}
