package delta

import (
	"bytes"
	"testing"
	"testing/quick"

	"aic/internal/numeric"
)

const testPageSize = 4096

func makePages(rng *numeric.RNG, n int) [][]byte {
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = make([]byte, testPageSize)
		rng.Bytes(pages[i])
	}
	return pages
}

func TestPageAlignedRoundTrip(t *testing.T) {
	rng := numeric.NewRNG(10)
	old := makePages(rng, 4)
	updates := []PageUpdate{
		{Index: 0, Old: old[0], New: mutate(old[0], 5, rng)},   // hot, light edit
		{Index: 7, Old: nil, New: makePages(rng, 1)[0]},        // new page: raw
		{Index: 3, Old: old[3], New: makePages(rng, 1)[0]},     // hot, full rewrite
		{Index: 2, Old: old[2], New: mutate(old[2], 500, rng)}, // hot, heavy edit
	}
	stream := EncodePageAligned(updates, DefaultBlockSize)
	got, err := DecodePageAligned(stream, func(idx uint64) []byte {
		for _, u := range updates {
			if u.Index == idx {
				return u.Old
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(updates) {
		t.Fatalf("decoded %d pages, want %d", len(got), len(updates))
	}
	for _, u := range updates {
		if !bytes.Equal(got[u.Index], u.New) {
			t.Fatalf("page %d mismatch", u.Index)
		}
	}
}

func mutate(p []byte, nEdits int, rng *numeric.RNG) []byte {
	out := append([]byte(nil), p...)
	for i := 0; i < nEdits; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}

func TestPageAlignedLightEditsCompressWell(t *testing.T) {
	rng := numeric.NewRNG(11)
	old := makePages(rng, 16)
	updates := make([]PageUpdate, len(old))
	var input int
	for i, p := range old {
		updates[i] = PageUpdate{Index: uint64(i), Old: p, New: mutate(p, 3, rng)}
		input += testPageSize
	}
	stream, st := EncodePageAlignedStats(updates, DefaultBlockSize)
	if st.InputBytes != input {
		t.Fatalf("input accounting: %d != %d", st.InputBytes, input)
	}
	if st.OutputBytes != len(stream) {
		t.Fatal("output accounting")
	}
	if st.Ratio() > 0.2 {
		t.Fatalf("light edits ratio = %v, expected well under 0.2", st.Ratio())
	}
	if st.HotPages != 16 || st.RawPages != 0 {
		t.Fatalf("page classes: hot=%d raw=%d", st.HotPages, st.RawPages)
	}
}

func TestPageAlignedRewrittenPageFallsBackToRaw(t *testing.T) {
	rng := numeric.NewRNG(12)
	old := makePages(rng, 1)[0]
	rewritten := makePages(rng, 1)[0]
	stream := EncodePageAligned([]PageUpdate{{Index: 0, Old: old, New: rewritten}}, DefaultBlockSize)
	// Raw fallback bounds the stream near one page.
	if len(stream) > testPageSize+32 {
		t.Fatalf("rewritten page stream is %d bytes", len(stream))
	}
	got, err := DecodePageAligned(stream, func(uint64) []byte { return old })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], rewritten) {
		t.Fatal("mismatch")
	}
}

func TestPageAlignedMissingOldVersion(t *testing.T) {
	rng := numeric.NewRNG(13)
	old := makePages(rng, 1)[0]
	stream := EncodePageAligned([]PageUpdate{{Index: 5, Old: old, New: mutate(old, 2, rng)}}, DefaultBlockSize)
	if _, err := DecodePageAligned(stream, func(uint64) []byte { return nil }); err == nil {
		t.Fatal("decode without old page must fail")
	}
}

func TestPageAlignedEmpty(t *testing.T) {
	stream := EncodePageAligned(nil, DefaultBlockSize)
	got, err := DecodePageAligned(stream, func(uint64) []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d pages from empty set", len(got))
	}
}

func TestPageAlignedCorruptStream(t *testing.T) {
	for _, bad := range [][]byte{{}, {0x01}, {0x01, 0x00}, {0x01, 0x00, 0x09}, {0x01, 0x00, PageRaw, 0x10}} {
		if _, err := DecodePageAligned(bad, func(uint64) []byte { return nil }); err == nil {
			t.Fatalf("corrupt stream %v accepted", bad)
		}
	}
}

// Property: arbitrary page sets round trip.
func TestPageAlignedRoundTripProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		r := numeric.NewRNG(uint64(seed))
		n := int(nRaw%8) + 1
		updates := make([]PageUpdate, n)
		olds := make(map[uint64][]byte)
		for i := 0; i < n; i++ {
			newPage := make([]byte, testPageSize)
			r.Bytes(newPage)
			u := PageUpdate{Index: uint64(i * 3), New: newPage}
			if r.Intn(2) == 0 {
				old := make([]byte, testPageSize)
				r.Bytes(old)
				// Make old partially similar to new.
				copy(old[:testPageSize/2], newPage[:testPageSize/2])
				u.Old = old
				olds[u.Index] = old
			}
			updates[i] = u
		}
		stream := EncodePageAligned(updates, DefaultBlockSize)
		got, err := DecodePageAligned(stream, func(idx uint64) []byte { return olds[idx] })
		if err != nil {
			return false
		}
		for _, u := range updates {
			if !bytes.Equal(got[u.Index], u.New) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRatioZeroInput(t *testing.T) {
	if (Stats{}).Ratio() != 0 {
		t.Fatal("zero-input ratio must be 0")
	}
}
