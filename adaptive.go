package aic

import (
	"math"

	"aic/internal/control"
	"aic/internal/metrics"
)

// MetricsRegistry is the facade's metric registry type: a dependency-free
// counter/gauge/histogram registry with deterministic Prometheus text
// exposition. Pass one to OpenCheckpointDir via WithMetrics and mount
// Registry.Handler() (or serve Text()) at /metrics.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry creates an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// AdaptiveControlConfig tunes the saturation controller WithAdaptiveControl
// installs; the zero value selects the documented defaults (DESIGN.md §14).
type AdaptiveControlConfig = control.Config

// AdaptiveController is the saturation analyzer driving the shed ladder.
// Step() advances it one deterministic tick; State()/Handler() expose it
// for inspection endpoints. Obtain one from CheckpointDir.Controller.
type AdaptiveController = control.Controller

// ControlState is the JSON-shaped controller snapshot State() returns.
type ControlState = control.State

// Shed-ladder levels, re-exported for callers inspecting Controller state.
const (
	ControlNormal       = control.LevelNormal
	ControlWideInterval = control.LevelWideInterval
	ControlSerialEncode = control.LevelSerialEncode
	ControlLocalOnly    = control.LevelLocalOnly
)

// dirMetrics is the CheckpointDir's instrument set; nil (metrics not
// enabled) makes every observation a no-op branch.
type dirMetrics struct {
	appends  *metrics.Counter // aic_ckptdir_append_total
	degraded *metrics.Counter // aic_ckptdir_append_degraded_total
	shed     *metrics.Counter // aic_ckptdir_append_shed_total
}

func newDirMetrics(reg *metrics.Registry) *dirMetrics {
	if reg == nil {
		return nil
	}
	return &dirMetrics{
		appends: reg.Counter("aic_ckptdir_append_total",
			"Checkpoints appended through the facade."),
		degraded: reg.Counter("aic_ckptdir_append_degraded_total",
			"Appends durable locally but short of the replication quorum."),
		shed: reg.Counter("aic_ckptdir_append_shed_total",
			"Appends that skipped the peer fan-out because the controller shed replication."),
	}
}

func (m *dirMetrics) observeAppend(degraded, shed bool) {
	if m == nil {
		return
	}
	m.appends.Inc()
	if degraded {
		m.degraded.Inc()
	}
	if shed {
		m.shed.Inc()
	}
}

// The CheckpointDir is the adaptive controller's actuator: the three Set
// methods below satisfy control.Actuator, storing knob positions in atomics
// the hot paths (and the embedding application) consult lock-free.

// SetIntervalScale implements the controller's interval knob. Schedulers
// pacing checkpoints should multiply their configured interval by
// IntervalScale each round; scales below 1 clamp to 1.
func (d *CheckpointDir) SetIntervalScale(scale float64) {
	if scale < 1 || math.IsNaN(scale) {
		scale = 1
	}
	d.intervalScale.Store(math.Float64bits(scale))
}

// IntervalScale returns the checkpoint-interval multiplier the controller
// currently requests (1 when unset or at LevelNormal).
func (d *CheckpointDir) IntervalScale() float64 {
	bits := d.intervalScale.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// SetParallelism implements the controller's encode-parallelism cap: 0
// restores the configured default, 1 forces the serial encoder. Appliers
// drive Process.SetParallelism (or rebuild workers) from EncodeParallelism.
func (d *CheckpointDir) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	d.parCap.Store(int32(n))
}

// EncodeParallelism returns the controller's current worker cap (0 = use
// the configured default).
func (d *CheckpointDir) EncodeParallelism() int { return int(d.parCap.Load()) }

// SetReplication implements the controller's replication knob: disabled
// sheds the peer fan-out, so Append commits locally and returns without
// consulting the peer group.
func (d *CheckpointDir) SetReplication(enabled bool) { d.replShed.Store(!enabled) }

// ReplicationEnabled reports whether Appends currently fan out to the
// peer group (always true until a controller sheds replication).
func (d *CheckpointDir) ReplicationEnabled() bool { return !d.replShed.Load() }

// Metrics returns the registry the directory was opened with (nil without
// WithMetrics/WithAdaptiveControl). Mount Metrics().Handler() at /metrics.
func (d *CheckpointDir) Metrics() *MetricsRegistry { return d.reg }

// Controller returns the adaptive controller WithAdaptiveControl installed
// (nil otherwise). Drive it with Step from the application's pacing loop,
// or Run for a wall-clock ticker; mount Controller().Handler() at /control.
func (d *CheckpointDir) Controller() *AdaptiveController { return d.ctrl }
