package aic

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
)

func TestProcessCheckpointRestoreRoundTrip(t *testing.T) {
	p := NewProcess(0)
	if p.PageSize() != 4096 {
		t.Fatalf("page size %d", p.PageSize())
	}
	p.Write(0, 0, []byte("hello"))
	p.Write(9, 100, bytes.Repeat([]byte{0xAB}, 256))
	chain := [][]byte{p.FullCheckpoint()}
	if p.DirtyPages() != 0 {
		t.Fatal("checkpoint must clear dirty tracking")
	}

	p.Advance(1)
	p.Write(0, 2, []byte("LLO!"))
	p.Write(3, 0, []byte("new page"))
	enc, st := p.DeltaCheckpoint()
	chain = append(chain, enc)
	if st.HotPages != 1 || st.RawPages != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Ratio() <= 0 || st.Ratio() > 1.2 {
		t.Fatalf("ratio %v", st.Ratio())
	}

	p.Advance(1)
	p.Free(9)
	p.Write(3, 8, []byte("again"))
	chain = append(chain, p.IncrementalCheckpoint())

	im, err := RestoreImage(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Matches(p) {
		t.Fatal("restored image differs")
	}
	if im.Pages() != p.Pages() {
		t.Fatal("page counts differ")
	}
	if im.Page(9) != nil {
		t.Fatal("freed page present after restore")
	}
	if got := im.Page(0); !bytes.Equal(got[:7], []byte("heLLO!\x00")) {
		t.Fatalf("page 0 = %q", got[:7])
	}
}

func TestRestoreImageErrors(t *testing.T) {
	if _, err := RestoreImage(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := RestoreImage([][]byte{[]byte("garbage")}); err == nil {
		t.Fatal("garbage chain accepted")
	}
	// Chain must start with a full checkpoint.
	p := NewProcess(0)
	p.Write(0, 0, []byte{1})
	p.FullCheckpoint()
	p.Write(0, 1, []byte{2})
	inc := p.IncrementalCheckpoint()
	if _, err := RestoreImage([][]byte{inc}); err == nil {
		t.Fatal("incremental-first chain accepted")
	}
}

func TestDeltaEncodeDecodePublic(t *testing.T) {
	source := bytes.Repeat([]byte("abcdefgh"), 512)
	target := append([]byte(nil), source...)
	target[100] = 'X'
	stream := DeltaEncode(source, target, 0)
	if len(stream) >= len(target)/4 {
		t.Fatalf("delta %d bytes for a 1-byte edit", len(stream))
	}
	got, err := DeltaDecode(source, stream)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("round trip: %v", err)
	}
}

// Property: arbitrary write sequences survive full+delta chains.
func TestProcessChainProperty(t *testing.T) {
	f := func(writes []uint16, splits uint8) bool {
		p := NewProcess(256)
		var chain [][]byte
		for i, w := range writes {
			p.Write(uint64(w%32), int(w)%200, []byte{byte(i), byte(w)})
			if i == 0 {
				chain = append(chain, p.FullCheckpoint())
			} else if byte(i)%max8(splits%7+2) == 0 {
				enc, _ := p.DeltaCheckpoint()
				chain = append(chain, enc)
			}
		}
		if len(chain) == 0 {
			return true
		}
		enc, _ := p.DeltaCheckpoint()
		chain = append(chain, enc)
		im, err := RestoreImage(chain)
		return err == nil && im.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func max8(v uint8) byte {
	if v == 0 {
		return 1
	}
	return byte(v)
}

func TestCheckpointDirPersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCheckpointDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(256)
	p.Write(0, 0, []byte("persist me"))
	if err := store.Append(context.Background(), "proc-a", p.Seq(), p.FullCheckpoint()); err != nil {
		t.Fatal(err)
	}
	p.Write(0, 8, []byte("MORE"))
	p.Write(3, 0, []byte("fresh page"))
	enc, _ := p.DeltaCheckpoint()
	if err := store.Append(context.Background(), "proc-a", p.Seq()-1, enc); err != nil {
		t.Fatal(err)
	}

	// A different handle (fresh open) restores the same image.
	store2, err := OpenCheckpointDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := store2.Chain(context.Background(), "proc-a")
	if err != nil {
		t.Fatal(err)
	}
	im, err := RestoreImage(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Matches(p) {
		t.Fatal("restored image differs after reopen")
	}
	if err := store2.Remove(context.Background(), "proc-a"); err != nil {
		t.Fatal(err)
	}
	if chain, _ := store2.Chain(context.Background(), "proc-a"); len(chain) != 0 {
		t.Fatal("chain survived Remove")
	}
}

func TestCheckpointDirTruncate(t *testing.T) {
	store, err := OpenCheckpointDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(256)
	p.Write(0, 0, []byte{1})
	store.Append(context.Background(), "p", 0, p.FullCheckpoint())
	p.Write(0, 1, []byte{2})
	enc, _ := p.DeltaCheckpoint()
	store.Append(context.Background(), "p", 1, enc)
	// A new full checkpoint supersedes the old chain.
	full2 := p.FullCheckpoint()
	store.Append(context.Background(), "p", 2, full2)
	if err := store.Truncate(context.Background(), "p", 2); err != nil {
		t.Fatal(err)
	}
	chain, err := store.Chain(context.Background(), "p")
	if err != nil || len(chain) != 1 {
		t.Fatalf("chain after truncate: %d, %v", len(chain), err)
	}
	im, err := RestoreImage(chain)
	if err != nil || !im.Matches(p) {
		t.Fatalf("truncated chain restore: %v", err)
	}
}
