# Developer entry points mirroring the CI gates, so `make lint test` locally
# proves what CI will prove. Run `make help` for the list.

GO ?= go

.PHONY: help build lint test race fuzz-smoke chaos-smoke cover bench bench-smoke

help: ## list targets
	@awk -F':.*## ' '/^[a-z-]+:.*## /{printf "  %-12s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

build: ## compile everything
	$(GO) build ./...

lint: ## the CI static gates: gofmt, vet, staticcheck (if installed), aiclint
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi
	timeout 120 $(GO) run ./cmd/aiclint ./...

test: ## full test suite
	$(GO) test ./...

race: ## full suite under the race detector, shuffled, as CI runs it
	$(GO) test -race -shuffle=on ./...

fuzz-smoke: ## short runs of every fuzz target, as CI runs them
	$(GO) test -run=^$$ -fuzz=FuzzPageAlignedParallel -fuzztime=20s ./internal/delta
	$(GO) test -run=^$$ -fuzz=FuzzChunker -fuzztime=20s ./internal/delta
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=20s ./internal/remote
	$(GO) test -run=^$$ -fuzz=FuzzParseSchedule -fuzztime=20s ./internal/chaos
	$(GO) test -run=^$$ -fuzz=FuzzParseRecipe -fuzztime=20s ./internal/storage

chaos-smoke: ## compaction-racing-faults chaos scenario under the race detector
	$(GO) test -race -short -run 'TestCompactionChaos' ./internal/chaos

cover: ## coverage profile + per-function summary
	$(GO) test -shuffle=on -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench: ## full pinned perf suite; writes BENCH_9.json against the BENCH_7.json baseline
	$(GO) run ./cmd/aicbench -json -out BENCH_9.json -baseline-from BENCH_7.json
	$(GO) run ./cmd/aicbench -check BENCH_9.json -max-regress 25

bench-smoke: ## CI-sized perf suite + schema validation of the committed report
	$(GO) run ./cmd/aicbench -json -short -out /tmp/bench-smoke.json
	$(GO) run ./cmd/aicbench -check /tmp/bench-smoke.json
	$(GO) run ./cmd/aicbench -check BENCH_9.json
