// Quickstart: run one SPEC-like benchmark under AIC, print its checkpoint
// trace and the NET² evaluation, and cross-validate the analytic result
// with the event-driven Monte Carlo simulator.
package main

import (
	"fmt"
	"log"

	"aic"
)

func main() {
	report, err := aic.RunBenchmark("milc", aic.Options{Policy: aic.AIC})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s under %v\n", report.Benchmark, report.Policy)
	fmt.Printf("  base time        %7.0f s\n", report.BaseTime)
	fmt.Printf("  wall time        %7.0f s (+%.1f%% no-failure overhead)\n",
		report.WallTime, report.OverheadPct)
	fmt.Printf("  compression      %7.2f (delta bytes / raw bytes)\n", report.CompressionRatio)
	fmt.Printf("  NET²             %7.4f (expected turnaround / base time at λ=1e-3)\n\n", report.NET2)

	fmt.Println("checkpoint intervals:")
	for i, iv := range report.Intervals {
		fmt.Printf("  #%d  t=[%5.0f..%5.0f]s  c1=%5.2fs  dl=%5.1fs  ds=%6.2f MiB  c3=%6.1fs  dirty=%d pages\n",
			i, iv.Start, iv.End, iv.C1, iv.DeltaLatency, iv.DeltaSize/(1<<20), iv.C3, iv.DirtyPages)
	}

	analytic, empirical, err := report.Validate(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEq.(1) Markov NET² = %.4f, event-driven Monte Carlo = %.4f (must agree)\n",
		analytic, empirical)

	// Compare against the two baselines the paper evaluates.
	for _, policy := range []aic.Policy{aic.SIC, aic.Moody} {
		base, err := aic.RunBenchmark("milc", aic.Options{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("vs %-5v NET² %.4f  →  AIC reduces turnaround by %.1f%%\n",
			policy, base.NET2, 100*report.Improvement(base))
	}
}
