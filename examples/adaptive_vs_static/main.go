// adaptive_vs_static sweeps system sizes and compares the three policies on
// every benchmark — the Fig. 11 / Fig. 12 story through the public API:
// adaptive checkpointing's advantage over its static counterpart grows with
// the system size, and both concurrent schemes dominate the sequential
// Moody baseline.
package main

import (
	"fmt"
	"log"

	"aic"
)

func main() {
	fmt.Println("Milc across system scales (AIC vs SIC vs Moody, NET²):")
	fmt.Printf("%7s %9s %9s %9s %14s\n", "scale", "AIC", "SIC", "Moody", "AIC vs SIC")
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		var net2 [3]float64
		for i, policy := range []aic.Policy{aic.AIC, aic.SIC, aic.Moody} {
			rep, err := aic.RunBenchmark("milc", aic.Options{Policy: policy, Scale: scale})
			if err != nil {
				log.Fatal(err)
			}
			net2[i] = rep.NET2
		}
		fmt.Printf("%6.2fx %9.4f %9.4f %9.4f %+13.1f%%\n",
			scale, net2[0], net2[1], net2[2], 100*(net2[0]-net2[1])/net2[1])
	}

	fmt.Println("\nAll benchmarks at 1x (NET²):")
	fmt.Printf("%-11s %9s %9s %9s\n", "benchmark", "AIC", "SIC", "Moody")
	for _, name := range aic.Benchmarks() {
		var net2 [3]float64
		for i, policy := range []aic.Policy{aic.AIC, aic.SIC, aic.Moody} {
			rep, err := aic.RunBenchmark(name, aic.Options{Policy: policy})
			if err != nil {
				log.Fatal(err)
			}
			net2[i] = rep.NET2
		}
		fmt.Printf("%-11s %9.4f %9.4f %9.4f\n", name, net2[0], net2[1], net2[2])
	}
}
