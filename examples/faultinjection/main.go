// faultinjection drives the end-to-end fault simulator: a process runs
// under incremental+delta checkpointing while failures of all three classes
// strike; every failure destroys the live process (total-node failures also
// wipe the local store), recovery replays the surviving chain and resumes
// the execution state from the checkpoint's CPU-state blob, and the lost
// work is re-executed. The final memory image is verified byte-for-byte
// against an undisturbed reference run — under both exponential and bursty
// Weibull failure processes.
package main

import (
	"fmt"
	"log"

	"aic/internal/failure"
	"aic/internal/faultsim"
	"aic/internal/numeric"
	"aic/internal/recovery"
	"aic/internal/storage"
	"aic/internal/workload"
)

func newManager(sys storage.System) *recovery.Manager {
	return recovery.NewManager("rank0",
		storage.NewLevelStore(sys.LocalDisk),
		storage.NewLevelStore(sys.RAID5),
		storage.NewLevelStore(sys.Remote))
}

func program() *workload.Synthetic {
	return workload.NewSynthetic("demo-app", 200, 512, 21, []workload.Phase{
		{Duration: 10, Rate: 50, RegionLo: 0, RegionHi: 512, Pattern: workload.Random, Mode: workload.Scramble, Fraction: 0.4},
		{Duration: 8, Rate: 60, RegionLo: 0, RegionHi: 512, Pattern: workload.Random, Mode: workload.Settle, Fraction: 1.0},
	})
}

func main() {
	sys := storage.BenchSystem(1, int64(workload.ReferenceFootprintPages)*4096)
	reference := faultsim.FinalImage(program())
	cfg := faultsim.Config{System: sys, Interval: 25, MaxFailures: 6}

	fmt.Println("exponential failures (λ = 8e-3/1.6e-2/6e-3 per level):")
	inj := failure.NewInjector(numeric.NewRNG(3), [3]float64{8e-3, 1.6e-2, 6e-3})
	res, err := faultsim.Run(program(), cfg, inj, newManager(sys))
	if err != nil {
		log.Fatal(err)
	}
	report(res, res.Image.Equal(reference))

	fmt.Println("\nbursty Weibull failures (shape 0.7, mean-matched):")
	shapes, scales := failure.WeibullMatchingRates([3]float64{8e-3, 1.6e-2, 6e-3}, 0.7)
	winj, err := failure.NewWeibullInjector(numeric.NewRNG(3), shapes, scales)
	if err != nil {
		log.Fatal(err)
	}
	res, err = faultsim.Run(program(), cfg, winj, newManager(sys))
	if err != nil {
		log.Fatal(err)
	}
	report(res, res.Image.Equal(reference))
}

func report(res *faultsim.Result, imageOK bool) {
	fmt.Printf("  base %.0f s → wall %.0f s  (%d checkpoints, %d failures: %d transient / %d partial / %d total-node)\n",
		res.BaseTime, res.WallTime, res.Checkpoints, res.Failures,
		res.PerLevel[0], res.PerLevel[1], res.PerLevel[2])
	for i, info := range res.Recoveries {
		fmt.Printf("  recovery %d: level %d, %d checkpoints, %.2f MiB read in %.1f s\n",
			i+1, info.SourceLevel, info.Checkpoints, float64(info.Bytes)/(1<<20), info.ReadTime)
	}
	fmt.Printf("  re-executed %.0f s of lost work\n", res.ReworkTime)
	if imageOK {
		fmt.Println("  final memory image identical to the undisturbed reference ✓")
	} else {
		fmt.Println("  !! final memory image DIFFERS from the reference")
	}
}
