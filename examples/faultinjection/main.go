// faultinjection demonstrates fault tolerance at both API layers.
//
// Part 1 drives the public facade with functional options: a Process
// (parallel delta encoding via aic.WithParallelism) checkpoints into a
// durable CheckpointDir, the newest stored element is silently corrupted on
// disk, and Scrub + RestoreLatestGood salvage the newest intact prefix.
//
// Part 2 drives the end-to-end fault simulator underneath: a program runs
// under incremental+delta checkpointing while failures of all three classes
// strike; every failure destroys the live process (total-node failures also
// wipe the local store), recovery replays the surviving chain and resumes
// the execution state from the checkpoint's CPU-state blob, and the lost
// work is re-executed. The final memory image is verified byte-for-byte
// against an undisturbed reference run — under both exponential and bursty
// Weibull failure processes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aic"
	"aic/internal/failure"
	"aic/internal/faultsim"
	"aic/internal/numeric"
	"aic/internal/recovery"
	"aic/internal/storage"
	"aic/internal/workload"
)

func main() {
	fmt.Println("facade: corrupt-and-salvage round trip:")
	if err := facadeDemo(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulator: failure-injected execution:")
	simulatorDemo()
}

// facadeDemo is the public-API path: OpenCheckpointDir + NewProcess with
// functional options, an injected on-disk corruption, and the scrub/restore
// salvage the storage layer guarantees.
func facadeDemo() error {
	dir, err := os.MkdirTemp("", "aic-faultinjection-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ckpts, err := aic.OpenCheckpointDir(dir)
	if err != nil {
		return err
	}
	defer ckpts.Close()

	// WithParallelism fans the delta encode across workers; the encoded
	// stream is byte-identical to the serial one.
	proc := aic.NewProcess(0, aic.WithParallelism(4))
	proc.Write(0, 0, []byte("alpha"))
	proc.Write(1, 0, []byte("beta"))
	if err := ckpts.Append(context.Background(), "job", proc.Seq(), proc.FullCheckpoint()); err != nil {
		return err
	}
	for _, update := range []string{"brave", "omega"} {
		proc.Advance(1)
		proc.Write(1, 0, []byte(update))
		enc, st := proc.DeltaCheckpoint()
		fmt.Printf("  delta seq=%d: %d bytes (ratio %.2f)\n", proc.Seq()-1, len(enc), st.Ratio())
		if err := ckpts.Append(context.Background(), "job", proc.Seq()-1, enc); err != nil {
			return err
		}
	}

	// Silent corruption strikes the newest stored element, beneath every
	// integrity layer: flip one byte of its file.
	path := filepath.Join(dir, "job", "ckpt-00000002.aic")
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}

	// Scrub quarantines the damage; RestoreLatestGood falls back to the
	// newest intact prefix.
	rep, err := ckpts.Scrub(context.Background(), "job", true)
	if err != nil {
		return err
	}
	fmt.Printf("  scrub: corrupt=%v repaired=%v\n", rep.Corrupt, rep.Repaired)
	im, rrep, err := ckpts.RestoreLatestGood(context.Background(), "job")
	if err != nil {
		return err
	}
	fmt.Printf("  restored: anchor=%d last=%d pages=%d\n", rrep.AnchorSeq, rrep.LastSeq, im.Pages())
	fmt.Printf("  page1=%q (the corrupted seq-2 update is discarded)\n", im.Page(1)[:5])
	return nil
}

func newManager(sys storage.System) *recovery.Manager {
	return recovery.NewManager("rank0",
		storage.NewLevelStore(sys.LocalDisk),
		storage.NewLevelStore(sys.RAID5),
		storage.NewLevelStore(sys.Remote))
}

func program() *workload.Synthetic {
	return workload.NewSynthetic("demo-app", 200, 512, 21, []workload.Phase{
		{Duration: 10, Rate: 50, RegionLo: 0, RegionHi: 512, Pattern: workload.Random, Mode: workload.Scramble, Fraction: 0.4},
		{Duration: 8, Rate: 60, RegionLo: 0, RegionHi: 512, Pattern: workload.Random, Mode: workload.Settle, Fraction: 1.0},
	})
}

func simulatorDemo() {
	sys := storage.BenchSystem(1, int64(workload.ReferenceFootprintPages)*4096)
	reference := faultsim.FinalImage(program())
	cfg := faultsim.Config{System: sys, Interval: 25, MaxFailures: 6}

	fmt.Println("  exponential failures (λ = 8e-3/1.6e-2/6e-3 per level):")
	inj := failure.NewInjector(numeric.NewRNG(3), [3]float64{8e-3, 1.6e-2, 6e-3})
	res, err := faultsim.Run(program(), cfg, inj, newManager(sys))
	if err != nil {
		log.Fatal(err)
	}
	report(res, res.Image.Equal(reference))

	fmt.Println("\n  bursty Weibull failures (shape 0.7, mean-matched):")
	shapes, scales := failure.WeibullMatchingRates([3]float64{8e-3, 1.6e-2, 6e-3}, 0.7)
	winj, err := failure.NewWeibullInjector(numeric.NewRNG(3), shapes, scales)
	if err != nil {
		log.Fatal(err)
	}
	res, err = faultsim.Run(program(), cfg, winj, newManager(sys))
	if err != nil {
		log.Fatal(err)
	}
	report(res, res.Image.Equal(reference))
}

func report(res *faultsim.Result, imageOK bool) {
	fmt.Printf("  base %.0f s → wall %.0f s  (%d checkpoints, %d failures: %d transient / %d partial / %d total-node)\n",
		res.BaseTime, res.WallTime, res.Checkpoints, res.Failures,
		res.PerLevel[0], res.PerLevel[1], res.PerLevel[2])
	for i, info := range res.Recoveries {
		fmt.Printf("  recovery %d: level %d, %d checkpoints, %.2f MiB read in %.1f s\n",
			i+1, info.SourceLevel, info.Checkpoints, float64(info.Bytes)/(1<<20), info.ReadTime)
	}
	fmt.Printf("  re-executed %.0f s of lost work\n", res.ReworkTime)
	if imageOK {
		fmt.Println("  final memory image identical to the undisturbed reference ✓")
	} else {
		fmt.Println("  !! final memory image DIFFERS from the reference")
	}
}
