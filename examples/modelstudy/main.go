// modelstudy reproduces the analytic part of the paper (Section III): the
// Markov models for concurrent multi-level checkpointing under the Coastal
// cluster profile — Fig. 5 (MPI scaling), Fig. 6 (RMS scaling) and Fig. 7
// (sharing factors) — and a custom workload run through the public API.
package main

import (
	"fmt"
	"log"

	"aic"
)

func main() {
	for _, name := range []string{"fig5", "fig6", "fig7"} {
		out, err := aic.RunExperiment(name, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
	}

	// A custom RMS-style workload defined through the public spec: a
	// phase-structured in-memory analytics job.
	spec := aic.ProgramSpec{
		Name:     "graph-analytics",
		BaseTime: 300,
		Pages:    2048,
		Phases: []aic.Phase{
			// Frontier expansion: scattered updates across the graph.
			{Duration: 15, Rate: 60, RegionLo: 0, RegionHi: 2048,
				Pattern: aic.Random, Mode: aic.Scramble, Fraction: 0.4},
			// Convergence: values settle back toward their fixpoint.
			{Duration: 10, Rate: 80, RegionLo: 0, RegionHi: 2048,
				Pattern: aic.Random, Mode: aic.Settle, Fraction: 1.0},
			// Bookkeeping on a small hot region.
			{Duration: 5, Rate: 10, RegionLo: 0, RegionHi: 128,
				Pattern: aic.Hotspot, Mode: aic.Tick},
		},
	}
	fmt.Printf("custom workload %q under all three policies:\n", spec.Name)
	for _, policy := range []aic.Policy{aic.AIC, aic.SIC, aic.Moody} {
		rep, err := aic.RunProgram(spec, aic.Options{Policy: policy, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5v NET² %.4f  (%2d checkpoints, ratio %.2f, overhead %.1f%%)\n",
			policy, rep.NET2, len(rep.Intervals), rep.CompressionRatio, rep.OverheadPct)
	}
}
