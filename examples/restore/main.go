// restore demonstrates the checkpoint/restore machinery end to end: a
// directly-driven process image takes a full checkpoint followed by
// delta-compressed incrementals; a simulated total-node failure destroys
// the live process; the image is rebuilt from the (remotely stored)
// encoded chain and verified byte-for-byte.
package main

import (
	"fmt"
	"log"

	"aic"
)

func main() {
	proc := aic.NewProcess(4096)

	// A small "application": a table of counters plus a streaming buffer.
	fill := func(page uint64, seed byte) {
		buf := make([]byte, 4096)
		for i := range buf {
			buf[i] = seed + byte(i%251)
		}
		proc.Write(page, 0, buf)
	}
	for p := uint64(0); p < 64; p++ {
		fill(p, byte(p))
	}

	// The chain starts with a full checkpoint (shipped to remote storage).
	var remoteChain [][]byte
	remoteChain = append(remoteChain, proc.FullCheckpoint())
	fmt.Printf("full checkpoint: %d pages, %d bytes\n", proc.Pages(), len(remoteChain[0]))

	// Three epochs of execution with delta checkpoints in between.
	for epoch := 1; epoch <= 3; epoch++ {
		proc.Advance(10)
		for i := 0; i < 40; i++ {
			page := uint64((epoch*13 + i*7) % 64)
			proc.Write(page, (i*97)%4000, []byte{byte(epoch), byte(i), 0xEE})
		}
		if epoch == 2 {
			proc.Free(63) // application shrinks its heap
		}
		enc, st := proc.DeltaCheckpoint()
		remoteChain = append(remoteChain, enc)
		fmt.Printf("epoch %d delta checkpoint: %d hot + %d raw pages, %d → %d bytes (ratio %.2f)\n",
			epoch, st.HotPages, st.RawPages, st.InputBytes, st.OutputBytes, st.Ratio())
	}

	fmt.Println("\n*** total node failure: local process and disk lost ***")
	fmt.Printf("restoring from the remote chain of %d checkpoints...\n", len(remoteChain))

	image, err := aic.RestoreImage(remoteChain)
	if err != nil {
		log.Fatal(err)
	}
	if !image.Matches(proc) {
		log.Fatal("restored image does not match the pre-failure process")
	}
	fmt.Printf("restored %d pages; image is byte-identical to the pre-failure process ✓\n", image.Pages())
	if image.Page(63) != nil {
		log.Fatal("freed page survived the restore")
	}
	fmt.Println("freed page correctly absent after restore ✓")

	// The codec is also available directly.
	src := []byte("the working set before the epoch")
	dst := []byte("the working set AFTER the epoch!")
	stream := aic.DeltaEncode(src, dst, 8)
	back, err := aic.DeltaDecode(src, stream)
	if err != nil || string(back) != string(dst) {
		log.Fatal("delta codec round trip failed")
	}
	fmt.Printf("standalone delta codec: %d-byte target encoded in %d bytes ✓\n", len(dst), len(stream))
}
