// Command deltabench runs the compression-focused experiments: the Fig. 2
// delta-dynamics study, the Table 3 compressor characterization, the
// compressor ablation (Xdelta3-PA vs whole-file Xdelta3 vs XOR+RLE), and a
// throughput/allocation microbenchmark of the serial vs parallel
// page-aligned encode pipeline.
//
// The throughput experiment supports -json for machine-readable output:
// per-pass timings, throughput relative to the input image size, and
// go-test-benchmem-style allocation counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"aic/internal/delta"
	"aic/internal/exp"
	"aic/internal/perfbench"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2 | table3 | ablation | throughput | all")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (fig2/ablation)")
	parallel := flag.Int("parallel", 0, "encode workers for the throughput experiment (0 = GOMAXPROCS)")
	dirtyMiB := flag.Int("dirty-mib", 64, "dirty-set size in MiB for the throughput experiment")
	jsonOut := flag.Bool("json", false, "with -experiment throughput: emit machine-readable JSON")
	flag.Parse()

	var subset []string
	if *benches != "" {
		subset = strings.Split(*benches, ",")
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "deltabench:", err)
		os.Exit(1)
	}

	run := map[string]bool{}
	if *experiment == "all" {
		run["fig2"], run["table3"], run["ablation"] = true, true, true
	} else {
		run[*experiment] = true
	}
	if run["fig2"] {
		series, err := exp.Fig2(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderFig2(series))
		fmt.Println()
	}
	if run["table3"] {
		rows, err := exp.Table3(*seed)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderTable3(rows))
		fmt.Println()
	}
	if run["ablation"] {
		rows, err := exp.AblationCompressor(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderAblations(rows, nil, nil))
	}
	if run["throughput"] {
		runThroughput(*seed, *dirtyMiB, *parallel, *jsonOut)
	}
	if !run["fig2"] && !run["table3"] && !run["ablation"] && !run["throughput"] {
		die(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

// passResult is one measured encode or decode pass. MiBps is relative to the
// input image size (the dirty-set bytes fed in), not the stream produced —
// the number that tells you how fast a checkpoint interval drains.
type passResult struct {
	Name        string  `json:"name"`
	PerOpNanos  int64   `json:"per_op_ns"`
	MiBps       float64 `json:"mibps"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// throughputReport is the -json document for the throughput experiment.
type throughputReport struct {
	Bench       string       `json:"bench"`
	DirtyMiB    int          `json:"dirty_mib"`
	Pages       int          `json:"pages"`
	Workers     int          `json:"workers"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Passes      []passResult `json:"passes"`
	StreamBytes int          `json:"stream_bytes"`
	Ratio       float64      `json:"ratio"`
}

// measurePass times fn over reps passes and samples allocation counters via
// runtime.MemStats, mirroring go test -benchmem.
func measurePass(name string, bytesPerOp int64, reps int, fn func()) passResult {
	fn() // warm the encoder pools so steady-state allocations are measured

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	perOp := elapsed / time.Duration(reps)
	return passResult{
		Name:        name,
		PerOpNanos:  perOp.Nanoseconds(),
		MiBps:       float64(bytesPerOp) / perOp.Seconds() / (1 << 20),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
	}
}

func (p passResult) render() string {
	return fmt.Sprintf("  %-14s %10v/op  %8.1f MiB/s  %9d B/op  %7d allocs/op\n",
		p.Name, time.Duration(p.PerOpNanos).Round(time.Microsecond), p.MiBps, p.BytesPerOp, p.AllocsPerOp)
}

// runThroughput benchmarks the serial and parallel page-aligned encoders
// (and decoders) over a synthetic dirty set, reporting throughput relative
// to the input image, speedup, and allocation counts.
func runThroughput(seed uint64, dirtyMiB, parallelism int, jsonOut bool) {
	if dirtyMiB <= 0 {
		dirtyMiB = 64
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	totalBytes := int64(dirtyMiB) << 20
	updates := perfbench.SyntheticUpdates(seed, int(totalBytes))
	reps := 3

	rep := throughputReport{
		Bench:      "deltabench-throughput",
		DirtyMiB:   dirtyMiB,
		Pages:      len(updates),
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	serial := measurePass("encode_serial", totalBytes, reps, func() {
		delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, 1)
	})
	par := measurePass(fmt.Sprintf("encode_par%d", workers), totalBytes, reps, func() {
		delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, workers)
	})

	stream := delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, workers)
	olds := make(map[uint64][]byte, len(updates))
	for _, u := range updates {
		if u.Old != nil {
			olds[u.Index] = u.Old
		}
	}
	fetch := func(idx uint64) []byte { return olds[idx] }
	dserial := measurePass("decode_serial", totalBytes, reps, func() {
		if _, err := delta.DecodePageAlignedParallel(stream, fetch, 1); err != nil {
			panic(err)
		}
	})
	dpar := measurePass(fmt.Sprintf("decode_par%d", workers), totalBytes, reps, func() {
		if _, err := delta.DecodePageAlignedParallel(stream, fetch, workers); err != nil {
			panic(err)
		}
	})
	rep.Passes = []passResult{serial, par, dserial, dpar}
	rep.StreamBytes = len(stream)
	rep.Ratio = float64(len(stream)) / float64(totalBytes)

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "deltabench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("Throughput — page-aligned delta pipeline, %d MiB dirty set (%d pages, GOMAXPROCS=%d)\n",
		dirtyMiB, len(updates), rep.GoMaxProcs)
	fmt.Print(serial.render(), par.render())
	fmt.Printf("  encode speedup ×%.2f at %d workers\n", par.MiBps/serial.MiBps, workers)
	fmt.Print(dserial.render(), dpar.render())
	fmt.Printf("  decode speedup ×%.2f at %d workers\n", dpar.MiBps/dserial.MiBps, workers)
	fmt.Printf("  stream: %d bytes (ratio %.4f)\n", rep.StreamBytes, rep.Ratio)
}
