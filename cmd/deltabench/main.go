// Command deltabench runs the compression-focused experiments: the Fig. 2
// delta-dynamics study, the Table 3 compressor characterization, and the
// compressor ablation (Xdelta3-PA vs whole-file Xdelta3 vs XOR+RLE).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aic/internal/exp"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2 | table3 | ablation | all")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (fig2/ablation)")
	flag.Parse()

	var subset []string
	if *benches != "" {
		subset = strings.Split(*benches, ",")
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "deltabench:", err)
		os.Exit(1)
	}

	run := map[string]bool{}
	if *experiment == "all" {
		run["fig2"], run["table3"], run["ablation"] = true, true, true
	} else {
		run[*experiment] = true
	}
	if run["fig2"] {
		series, err := exp.Fig2(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderFig2(series))
		fmt.Println()
	}
	if run["table3"] {
		rows, err := exp.Table3(*seed)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderTable3(rows))
		fmt.Println()
	}
	if run["ablation"] {
		rows, err := exp.AblationCompressor(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderAblations(rows, nil, nil))
	}
	if !run["fig2"] && !run["table3"] && !run["ablation"] {
		die(fmt.Errorf("unknown experiment %q", *experiment))
	}
}
