// Command deltabench runs the compression-focused experiments: the Fig. 2
// delta-dynamics study, the Table 3 compressor characterization, the
// compressor ablation (Xdelta3-PA vs whole-file Xdelta3 vs XOR+RLE), and a
// throughput/allocation microbenchmark of the serial vs parallel
// page-aligned encode pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"aic/internal/delta"
	"aic/internal/exp"
	"aic/internal/numeric"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2 | table3 | ablation | throughput | all")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (fig2/ablation)")
	parallel := flag.Int("parallel", 0, "encode workers for the throughput experiment (0 = GOMAXPROCS)")
	dirtyMiB := flag.Int("dirty-mib", 64, "dirty-set size in MiB for the throughput experiment")
	flag.Parse()

	var subset []string
	if *benches != "" {
		subset = strings.Split(*benches, ",")
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "deltabench:", err)
		os.Exit(1)
	}

	run := map[string]bool{}
	if *experiment == "all" {
		run["fig2"], run["table3"], run["ablation"] = true, true, true
	} else {
		run[*experiment] = true
	}
	if run["fig2"] {
		series, err := exp.Fig2(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderFig2(series))
		fmt.Println()
	}
	if run["table3"] {
		rows, err := exp.Table3(*seed)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderTable3(rows))
		fmt.Println()
	}
	if run["ablation"] {
		rows, err := exp.AblationCompressor(*seed, subset...)
		if err != nil {
			die(err)
		}
		fmt.Print(exp.RenderAblations(rows, nil, nil))
	}
	if run["throughput"] {
		runThroughput(*seed, *dirtyMiB, *parallel)
	}
	if !run["fig2"] && !run["table3"] && !run["ablation"] && !run["throughput"] {
		die(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

// throughputUpdates synthesizes a dirty set with the AIC steady-state mix:
// 70% hot lightly-edited pages, 10% hot rewritten pages (raw fallback),
// 20% fresh pages without a previous version.
func throughputUpdates(seed uint64, totalBytes int) []delta.PageUpdate {
	const pageSize = 4096
	rng := numeric.NewRNG(seed)
	pages := totalBytes / pageSize
	updates := make([]delta.PageUpdate, pages)
	for i := range updates {
		newPage := make([]byte, pageSize)
		switch {
		case i%10 < 7:
			old := make([]byte, pageSize)
			rng.Bytes(old)
			copy(newPage, old)
			for k := 0; k < 8; k++ {
				newPage[rng.Intn(pageSize)] ^= byte(1 + rng.Intn(255))
			}
			updates[i] = delta.PageUpdate{Index: uint64(i), Old: old, New: newPage}
		case i%10 < 8:
			old := make([]byte, pageSize)
			rng.Bytes(old)
			rng.Bytes(newPage)
			updates[i] = delta.PageUpdate{Index: uint64(i), Old: old, New: newPage}
		default:
			rng.Bytes(newPage)
			updates[i] = delta.PageUpdate{Index: uint64(i), New: newPage}
		}
	}
	return updates
}

// measureEncode times fn over reps passes and reports throughput plus
// go-test-benchmem-style allocation counters sampled via runtime.MemStats.
func measureEncode(name string, bytesPerOp int64, reps int, fn func()) (mbps float64) {
	fn() // warm the encoder pools so steady-state allocations are measured

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	perOp := elapsed / time.Duration(reps)
	mbps = float64(bytesPerOp) / perOp.Seconds() / (1 << 20)
	allocsPerOp := (after.Mallocs - before.Mallocs) / uint64(reps)
	bPerOp := (after.TotalAlloc - before.TotalAlloc) / uint64(reps)
	fmt.Printf("  %-14s %10v/op  %8.1f MiB/s  %9d B/op  %7d allocs/op\n",
		name, perOp.Round(time.Microsecond), mbps, bPerOp, allocsPerOp)
	return mbps
}

// runThroughput benchmarks the serial and parallel page-aligned encoders
// (and decoders) over a synthetic dirty set, reporting throughput,
// speedup, and allocation counts.
func runThroughput(seed uint64, dirtyMiB, parallelism int) {
	if dirtyMiB <= 0 {
		dirtyMiB = 64
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	totalBytes := int64(dirtyMiB) << 20
	updates := throughputUpdates(seed, int(totalBytes))
	reps := 3

	fmt.Printf("Throughput — page-aligned delta pipeline, %d MiB dirty set (%d pages, GOMAXPROCS=%d)\n",
		dirtyMiB, len(updates), runtime.GOMAXPROCS(0))

	serial := measureEncode("encode serial", totalBytes, reps, func() {
		delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, 1)
	})
	par := measureEncode(fmt.Sprintf("encode par=%d", workers), totalBytes, reps, func() {
		delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, workers)
	})
	fmt.Printf("  encode speedup ×%.2f at %d workers\n", par/serial, workers)

	stream := delta.EncodePageAlignedParallel(updates, delta.DefaultBlockSize, workers)
	olds := make(map[uint64][]byte, len(updates))
	for _, u := range updates {
		if u.Old != nil {
			olds[u.Index] = u.Old
		}
	}
	fetch := func(idx uint64) []byte { return olds[idx] }
	dserial := measureEncode("decode serial", totalBytes, reps, func() {
		if _, err := delta.DecodePageAlignedParallel(stream, fetch, 1); err != nil {
			panic(err)
		}
	})
	dpar := measureEncode(fmt.Sprintf("decode par=%d", workers), totalBytes, reps, func() {
		if _, err := delta.DecodePageAlignedParallel(stream, fetch, workers); err != nil {
			panic(err)
		}
	})
	fmt.Printf("  decode speedup ×%.2f at %d workers\n", dpar/dserial, workers)
	fmt.Printf("  stream: %d bytes (ratio %.4f)\n", len(stream), float64(len(stream))/float64(totalBytes))
}
