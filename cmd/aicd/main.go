// Command aicd is the checkpoint replication peer daemon: it listens for
// the remote package's wire protocol and applies incoming operations to a
// durable FSStore (or, with -mem, an in-memory store for experiments). A
// group of aicd instances plus a client configured with
// aic.WithReplication forms the paper's networked multi-level checkpoint
// hierarchy: L1 stays on the writing node, and aicd peers play the L2/L3
// partner-group and remote-storage roles.
//
// Usage:
//
//	aicd -listen :9337 -dir /var/lib/aic/peer
//	aicd -listen :9337 -dir /var/lib/aic/peer -metrics :9338
//	aicd -listen :9337 -dir /var/lib/aic/peer -quota-bytes 1073741824 -quota-chains 64
//	aicd -listen :9337 -dir /var/lib/aic/peer -dedup -compact-interval 1m
//
// -dedup turns on chunk-level content-addressed storage: checkpoints are
// cut into content-defined chunks and identical content — across procs,
// tenants and ring replicas landing on this peer — is stored once, with
// durable refcounts. -compact-interval arms the online chain compactor:
// chains longer than -compact-max-chain are folded into a fresh full
// anchor plus the -compact-keep newest elements without pausing incoming
// replication, and unreferenced chunks are garbage-collected after each
// pass. See DESIGN.md §16.
//
// A peer is multi-tenant: protocol-v2 clients address chains as
// (tenant, proc), each tenant isolated in its own namespace of the one
// backing store. -quota-bytes / -quota-chains cap every tenant's stored
// bytes and chain count (rejections are terminal quota errors at the
// client), and -staging-max bounds the staging pool partial transfers may
// pin (excess writers get transient backpressure and retry with backoff).
//
// With -metrics, the daemon exposes its live instrumentation (DESIGN.md
// §14) as Prometheus text at /metrics, plus an observe-only saturation
// controller's state at /control.
//
// The store directory is scrub-compatible with aicfsck, which can also
// check a running peer over the wire with -peer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aic/internal/compact"
	"aic/internal/control"
	"aic/internal/metrics"
	"aic/internal/remote"
	"aic/internal/storage"
)

func main() {
	listen := flag.String("listen", ":9337", "address to accept replication connections on")
	dir := flag.String("dir", "", "durable checkpoint store root (required unless -mem)")
	mem := flag.Bool("mem", false, "serve an in-memory store instead of a directory (volatile; for experiments)")
	idle := flag.Duration("idle", 2*time.Minute, "per-connection idle timeout")
	quiet := flag.Bool("quiet", false, "suppress per-connection diagnostics")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and controller /control on this address (e.g. :9338; empty disables)")
	controlEvery := flag.Duration("control-interval", time.Second, "saturation-controller sampling interval (with -metrics)")
	quotaBytes := flag.Int64("quota-bytes", 0, "per-tenant stored-byte quota; writes past it are rejected with a quota error (0 = unlimited)")
	quotaChains := flag.Int("quota-chains", 0, "per-tenant chain-count quota (stripe chains excluded; 0 = unlimited)")
	stagingMax := flag.Int64("staging-max", 0, "bound on in-flight transfer staging bytes; clients past it back off and retry (0 = default 256 MiB)")
	dedup := flag.Bool("dedup", false, "store checkpoints as content-addressed chunks; identical content across procs/tenants is stored once (requires -dir)")
	compactEvery := flag.Duration("compact-interval", 0, "run the online chain compactor this often (0 disables)")
	compactMaxChain := flag.Int("compact-max-chain", compact.DefaultMaxChain, "chain length that triggers compaction")
	compactKeep := flag.Int("compact-keep", compact.DefaultKeep, "newest chain elements a compaction keeps (the restore-rewind bound)")
	flag.Parse()

	var (
		store storage.Store
		err   error
	)
	switch {
	case *mem:
		store = storage.NewLevelStore(storage.Target{Name: "aicd-mem"})
	case *dir == "":
		fmt.Fprintln(os.Stderr, "aicd: -dir is required (or -mem for a volatile store)")
		os.Exit(2)
	default:
		store, err = storage.NewFSStore(*dir, storage.Target{Name: "aicd"})
		if err != nil {
			log.Fatalf("aicd: %v", err)
		}
	}

	// Quota admission wraps the raw store: every tenant namespace gets the
	// same default limits, enforced before any replication byte lands.
	raw := store
	var quota *storage.QuotaStore
	if *quotaBytes > 0 || *quotaChains > 0 {
		quota = storage.NewQuotaStore(store, storage.Quota{MaxBytes: *quotaBytes, MaxChains: *quotaChains})
		store = quota
		log.Printf("aicd: per-tenant quota: %d bytes, %d chains (0 = unlimited)", *quotaBytes, *quotaChains)
	}

	cfg := remote.ServerConfig{IdleTimeout: *idle, MaxStagingBytes: *stagingMax}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := remote.NewServer(store, cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("aicd: %v", err)
	}
	log.Printf("aicd: serving checkpoint replication on %s", ln.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		srv.SetMetrics(reg)
		if fs, ok := raw.(*storage.FSStore); ok {
			fs.SetMetrics(reg)
		}
		if quota != nil {
			quota.SetMetrics(reg)
		}
		// The daemon's controller observes only: it classifies this peer's
		// saturation for operators (and the /control endpoint) without
		// actuating anything — interval and replication decisions belong to
		// the writing node's CheckpointDir controller.
		ctrl := control.New(control.Config{}, control.NewRegistryCollector(reg), &control.NopActuator{}, reg)
		go ctrl.Run(ctx, *controlEvery)

		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/control", ctrl.Handler())
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("aicd: metrics listener: %v", err)
		}
		log.Printf("aicd: serving /metrics and /control on %s", mln.Addr())
		msrv := &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("aicd: metrics server: %v", err)
			}
		}()
		defer msrv.Close()
	}

	if *dedup {
		fs, ok := raw.(*storage.FSStore)
		if !ok {
			fmt.Fprintln(os.Stderr, "aicd: -dedup requires a directory store (-dir)")
			os.Exit(2)
		}
		if err := fs.EnableDedup(ctx, storage.DedupConfig{}); err != nil {
			log.Fatalf("aicd: dedup: %v", err)
		}
		st, _ := fs.DedupStats(ctx)
		log.Printf("aicd: content-addressed dedup on: %d chunks, ratio %.2f", st.Chunks, st.Ratio())
	}
	if *compactEvery > 0 {
		cs, ok := raw.(compact.Store)
		if !ok {
			fmt.Fprintln(os.Stderr, "aicd: -compact-interval requires a store with anchor replacement")
			os.Exit(2)
		}
		comp := compact.New(cs, compact.Config{MaxChain: *compactMaxChain, Keep: *compactKeep, Metrics: reg})
		go func() {
			if err := comp.Run(ctx, *compactEvery); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("aicd: compactor: %v", err)
			}
		}()
		log.Printf("aicd: compactor armed: every %v, max-chain %d, keep %d", *compactEvery, *compactMaxChain, *compactKeep)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("aicd: %v: shutting down", s)
		cancel()
		srv.Close()
	}()

	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("aicd: %v", err)
	}
}
