package main

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"aic/internal/ckpt"
	"aic/internal/memsim"
	"aic/internal/numeric"
	"aic/internal/storage"
)

// seedStore builds a four-checkpoint chain (one full, three deltas) for
// proc "p0" in a fresh FSStore rooted at dir.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	fs, err := storage.NewFSStore(dir, storage.Target{})
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewRNG(7)
	as := memsim.New(512)
	b := ckpt.NewBuilder(512, 0, 24)
	buf := make([]byte, 512)
	for i := uint64(0); i < 12; i++ {
		rng.Bytes(buf)
		as.Write(i, 0, buf, 0)
	}
	ctx := context.Background()
	if err := fs.Put(ctx, "p0", 0, b.FullCheckpoint(as).Encode()); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		rng.Bytes(buf[:80])
		as.Write(uint64(step%12), 0, buf[:80], float64(step))
		c, _ := b.DeltaCheckpoint(as)
		if err := fs.Put(ctx, "p0", step, c.Encode()); err != nil {
			t.Fatal(err)
		}
	}
}

func ckptFile(dir string, seq int) string {
	return filepath.Join(dir, "p0", fmt.Sprintf("ckpt-%08d.aic", seq))
}

func TestRunCleanStoreExitsZero(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-restore-check"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "restore-check: ok") {
		t.Fatalf("missing restore-check line:\n%s", out.String())
	}
}

func TestRunCorruptionExitsOne(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	if err := storage.FlipBit(ckptFile(dir, 2), 40, 3); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestRunRepairReturnsToZero(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	if err := storage.FlipBit(ckptFile(dir, 2), 40, 3); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-repair"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestRunUnrestorableExitsTwo(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	// Corrupting the anchor leaves deltas with nothing to replay against:
	// scrub alone reports status 1, but -restore-check proves the chain has
	// no restorable prefix and escalates to 2.
	if err := storage.FlipBit(ckptFile(dir, 0), 40, 0); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-restore-check"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestRunOperationalErrorsExitThree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 3 {
		t.Fatalf("no flags: exit = %d, want 3", code)
	}
	if code := run([]string{"-dir", filepath.Join(t.TempDir(), "missing")}, &out, &errb); code != 3 {
		t.Fatalf("missing dir: exit = %d, want 3", code)
	}
	if code := run([]string{"-dir", "x", "-peer", "y"}, &out, &errb); code != 3 {
		t.Fatalf("dir+peer: exit = %d, want 3", code)
	}
	if code := run([]string{"-bogus-flag"}, &out, &errb); code != 3 {
		t.Fatalf("bad flag: exit = %d, want 3", code)
	}
}

func TestRunEmptyStoreExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", t.TempDir()}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "empty store") {
		t.Fatalf("missing empty-store notice:\n%s", out.String())
	}
}
