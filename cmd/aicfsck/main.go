// Command aicfsck is the checkpoint-store consistency checker: it scrubs a
// CheckpointDir/FSStore root, cross-checking each process's manifest
// against its on-disk files and per-frame CRCs, optionally repairing the
// manifest, and optionally proving each chain still restores via the
// last-good-prefix path.
//
// Exit status follows fsck convention: 0 = every chain clean (or repaired
// cleanly), 1 = inconsistencies found and left in place (run with -repair),
// 2 = a chain has no restorable prefix at all, 3 = operational error.
package main

import (
	"flag"
	"fmt"
	"os"

	"aic/internal/recovery"
	"aic/internal/storage"
)

func main() {
	dir := flag.String("dir", "", "checkpoint store root (required)")
	proc := flag.String("proc", "", "check a single process (default: all)")
	repair := flag.Bool("repair", false, "repair manifests: drop dead entries, delete corrupt/orphaned files, rebuild destroyed manifests")
	restoreCheck := flag.Bool("restore-check", false, "additionally replay each chain's newest intact prefix and report what a restore would discard")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "aicfsck: -dir is required")
		os.Exit(3)
	}
	if _, err := os.Stat(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "aicfsck:", err)
		os.Exit(3)
	}
	fs, err := storage.NewFSStore(*dir, storage.Target{Name: "fsck"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aicfsck:", err)
		os.Exit(3)
	}

	procs := []string{*proc}
	if *proc == "" {
		procs, err = fs.Procs()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aicfsck:", err)
			os.Exit(3)
		}
		if len(procs) == 0 {
			fmt.Println("aicfsck: empty store")
			return
		}
	}

	status := 0
	worse := func(s int) {
		if s > status {
			status = s
		}
	}
	for _, p := range procs {
		rep, err := fs.Scrub(p, *repair)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicfsck: %s: %v\n", p, err)
			worse(3)
			continue
		}
		fmt.Println(rep)
		if !rep.Clean() && !rep.Repaired {
			worse(1)
		}
		if !*restoreCheck {
			continue
		}
		chain, missing, err := fs.ChainBestEffort(p)
		if err != nil || len(chain) == 0 {
			fmt.Printf("%s: restore-check: no readable chain (%v)\n", p, err)
			worse(2)
			continue
		}
		_, good, err := recovery.RestoreLatestGood(chain)
		if err != nil {
			fmt.Printf("%s: restore-check: UNRESTORABLE: %v\n", p, err)
			worse(2)
			continue
		}
		fmt.Printf("%s: restore-check: ok anchor=%d last=%d replayed=%d discarded=%v missing=%v\n",
			p, good.AnchorSeq, good.LastSeq, len(good.Restored), good.Discarded, missing)
	}
	os.Exit(status)
}
