// Command aicfsck is the checkpoint-store consistency checker: it scrubs a
// checkpoint store, cross-checking each process's manifest against its
// on-disk files and per-frame CRCs, optionally repairing the manifest, and
// optionally proving each chain still restores via the last-good-prefix
// path.
//
// The store may be a local CheckpointDir/FSStore root (-dir) or a running
// aicd replication peer (-peer host:port); every check runs through the
// same storage.Store contract, so the two forms behave identically — a
// peer's scrub simply executes on the peer, against its own durable state.
//
// Exit status follows fsck convention: 0 = every chain clean (or repaired
// cleanly), 1 = inconsistencies found and left in place (run with -repair),
// 2 = a chain has no restorable prefix at all, 3 = operational error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aic/internal/recovery"
	"aic/internal/remote"
	"aic/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit: args are the command-line
// arguments after the program name, output goes to stdout/stderr, and the
// fsck exit status is returned instead of passed to os.Exit, so tests can
// drive every exit path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("aicfsck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	dir := fl.String("dir", "", "checkpoint store root (this or -peer is required)")
	peer := fl.String("peer", "", "check a running aicd peer at host:port instead of a local directory")
	proc := fl.String("proc", "", "check a single process (default: all)")
	repair := fl.Bool("repair", false, "repair manifests: drop dead entries, delete corrupt/orphaned files, rebuild destroyed manifests")
	restoreCheck := fl.Bool("restore-check", false, "additionally replay each chain's newest intact prefix and report what a restore would discard")
	timeout := fl.Duration("timeout", time.Minute, "overall deadline for peer operations")
	if err := fl.Parse(args); err != nil {
		return 3
	}

	var store storage.Store
	switch {
	case *dir != "" && *peer != "":
		fmt.Fprintln(stderr, "aicfsck: -dir and -peer are mutually exclusive")
		return 3
	case *peer != "":
		rs := remote.NewStore(*peer, remote.Config{})
		defer rs.Close()
		store = rs
	case *dir != "":
		if _, err := os.Stat(*dir); err != nil {
			fmt.Fprintln(stderr, "aicfsck:", err)
			return 3
		}
		fs, err := storage.NewFSStore(*dir, storage.Target{Name: "fsck"})
		if err != nil {
			fmt.Fprintln(stderr, "aicfsck:", err)
			return 3
		}
		store = fs
	default:
		fmt.Fprintln(stderr, "aicfsck: -dir or -peer is required")
		return 3
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	procs := []string{*proc}
	if *proc == "" {
		var err error
		procs, err = store.List(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "aicfsck:", err)
			return 3
		}
		if len(procs) == 0 {
			fmt.Fprintln(stdout, "aicfsck: empty store")
			return 0
		}
	}

	status := 0
	worse := func(s int) {
		if s > status {
			status = s
		}
	}
	for _, p := range procs {
		rep, err := store.Scrub(ctx, p, *repair)
		if err != nil {
			fmt.Fprintf(stderr, "aicfsck: %s: %v\n", p, err)
			worse(3)
			continue
		}
		fmt.Fprintln(stdout, rep)
		if !rep.Clean() && !rep.Repaired {
			worse(1)
		}
		if !*restoreCheck {
			continue
		}
		chain, missing, err := store.Get(ctx, p)
		if err != nil || len(chain) == 0 {
			fmt.Fprintf(stdout, "%s: restore-check: no readable chain (%v)\n", p, err)
			worse(2)
			continue
		}
		_, good, err := recovery.RestoreLatestGood(chain)
		if err != nil {
			fmt.Fprintf(stdout, "%s: restore-check: UNRESTORABLE: %v\n", p, err)
			worse(2)
			continue
		}
		fmt.Fprintf(stdout, "%s: restore-check: ok anchor=%d last=%d replayed=%d discarded=%v missing=%v\n",
			p, good.AnchorSeq, good.LastSeq, len(good.Restored), good.Discarded, missing)
	}
	return status
}
