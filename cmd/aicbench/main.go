// Command aicbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aicbench -experiment all            # every table and figure
//	aicbench -experiment fig11 -seed 7  # one experiment, custom seed
//
// Experiments: fig2, fig5, fig6, fig7, fig11, fig12, table1, table3,
// ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aic"
	"aic/internal/exp"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (all or one of: fig2 fig5 fig6 fig7 fig11 fig12 table1 table3 ablations extensions studies)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	format := flag.String("format", "text", "text | csv (csv supports the figure/table experiments)")
	flag.Parse()

	names := aic.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		start := time.Now()
		var out string
		var err error
		if *format == "csv" {
			out, err = exp.CSV(name, *seed)
		} else {
			out, err = aic.RunExperiment(name, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *format != "csv" {
			fmt.Printf("[%s finished in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
}
