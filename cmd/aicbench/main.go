// Command aicbench regenerates the paper's tables and figures, and runs the
// pinned performance suite behind the repo's BENCH_*.json trajectory.
//
// Usage:
//
//	aicbench -experiment all            # every table and figure
//	aicbench -experiment fig11 -seed 7  # one experiment, custom seed
//	aicbench -json -out BENCH_9.json    # machine-readable perf suite
//	aicbench -json -short               # CI-smoke-sized perf suite
//	aicbench -check BENCH_9.json        # schema-validate an existing report
//
// Experiments: fig2, fig5, fig6, fig7, fig11, fig12, table1, table3,
// ablations.
//
// The -json mode runs the fixed internal/perfbench suite and writes a
// schema-validated report. -baseline-from merges a previous report's
// current run in as the new report's baseline, which is how a PR pins the
// pre-change numbers next to the post-change ones in one artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"aic"
	"aic/internal/exp"
	"aic/internal/perfbench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (all or one of: fig2 fig5 fig6 fig7 fig11 fig12 table1 table3 ablations extensions studies)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	format := flag.String("format", "text", "text | csv (csv supports the figure/table experiments)")
	jsonMode := flag.Bool("json", false, "run the pinned perf suite and write a machine-readable report")
	short := flag.Bool("short", false, "with -json: CI-smoke-sized suite")
	out := flag.String("out", "BENCH_9.json", "with -json: report output path")
	baselineFrom := flag.String("baseline-from", "", "with -json: prior report whose current run becomes this report's baseline")
	runLabel := flag.String("run-label", "", "with -json: label for the current run (default: timestamped)")
	check := flag.String("check", "", "schema-validate an existing report and exit")
	maxRegress := flag.Float64("max-regress", 0, "with -check: fail when any metric regressed versus the report's baseline by more than this percentage (0 disables)")
	flag.Parse()

	switch {
	case *check != "":
		os.Exit(runCheck(*check, *maxRegress))
	case *jsonMode:
		os.Exit(runPerfSuite(*short, *seed, *out, *baselineFrom, *runLabel))
	}

	names := aic.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		start := time.Now()
		var o string
		var err error
		if *format == "csv" {
			o, err = exp.CSV(name, *seed)
		} else {
			o, err = aic.RunExperiment(name, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(o)
		if *format != "csv" {
			fmt.Printf("[%s finished in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
}

// runCheck validates a report file against the perfbench schema and, with
// maxRegress > 0, gates its deltas against the recorded baseline.
func runCheck(path string, maxRegress float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aicbench: %v\n", err)
		return 1
	}
	if err := perfbench.Validate(data); err != nil {
		fmt.Fprintf(os.Stderr, "aicbench: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("aicbench: %s: schema ok\n", path)
	if maxRegress <= 0 {
		return 0
	}
	var rep perfbench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "aicbench: %s: %v\n", path, err)
		return 1
	}
	regs := rep.Regressions(maxRegress)
	for _, d := range regs {
		fmt.Fprintf(os.Stderr, "aicbench: %s: %s regressed %.1f%% (%.3f -> %.3f %s, tolerance %.0f%%)\n",
			path, d.Name, d.ChangePct, d.Baseline, d.Current, d.Unit, maxRegress)
	}
	if len(regs) > 0 {
		return 1
	}
	fmt.Printf("aicbench: %s: all deltas within %.0f%% of baseline\n", path, maxRegress)
	return 0
}

// runPerfSuite executes the perfbench suite and writes the report.
func runPerfSuite(short bool, seed uint64, out, baselineFrom, runLabel string) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "aicbench: %v\n", err)
		return 1
	}
	cfg := perfbench.Config{Short: short, Seed: seed}
	label := runLabel
	if label == "" {
		label = "run " + time.Now().UTC().Format(time.RFC3339)
	}

	var baseline *perfbench.Run
	if baselineFrom != "" {
		data, err := os.ReadFile(baselineFrom)
		if err != nil {
			return fail(err)
		}
		var prior perfbench.Report
		if err := json.Unmarshal(data, &prior); err != nil {
			return fail(fmt.Errorf("parse %s: %w", baselineFrom, err))
		}
		if len(prior.Current.Metrics) == 0 {
			return fail(fmt.Errorf("%s has no current run to use as baseline", baselineFrom))
		}
		baseline = &prior.Current
	}

	fmt.Fprintf(os.Stderr, "aicbench: running perf suite (short=%v)...\n", short)
	run, err := perfbench.RunSuite(context.Background(), cfg, label)
	if err != nil {
		return fail(err)
	}
	rep := perfbench.NewReport(cfg, baseline, run)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := perfbench.Validate(data); err != nil {
		return fail(fmt.Errorf("generated report fails its own schema: %w", err))
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}

	for _, m := range run.Metrics {
		fmt.Printf("  %-32s %12.3f %s\n", m.Name, m.Value, m.Unit)
	}
	if baseline != nil {
		improved := rep.Improved()
		fmt.Printf("aicbench: %d/%d metrics improved vs baseline %q\n",
			len(improved), len(rep.Deltas), baseline.Label)
	}
	fmt.Printf("aicbench: wrote %s\n", out)
	return 0
}
