// Command chainviz prints the paper's Markov chains (Fig. 4's L1L3 / L2L3 /
// L1L2L3 and the Moody period model) as Graphviz DOT, annotated with
// transition probabilities under the Coastal profile — render with
// `chainviz -chain l2l3 | dot -Tsvg`.
package main

import (
	"flag"
	"fmt"
	"os"

	"aic/internal/model"
)

func main() {
	chain := flag.String("chain", "l2l3", "l1l3 | l2l3 | l1l2l3 | moody")
	w := flag.Float64("w", 1800, "work span (s)")
	size := flag.Float64("size", 1, "system-size multiplier (MPI scaling)")
	n1 := flag.Int("n1", 0, "Moody: level-1 checkpoints per level-2")
	n2 := flag.Int("n2", 3, "Moody: level-2 checkpoints per level-3")
	flag.Parse()

	p := model.Coastal().ScaleMPI(*size)
	switch *chain {
	case "l1l3":
		ch, _, _ := model.L1L3Interval(*w, p)
		fmt.Print(ch.DOT("L1L3"))
	case "l2l3":
		ch, _, _ := model.L2L3Interval(*w, p, p)
		fmt.Print(ch.DOT("L2L3"))
	case "l1l2l3":
		ch, _, _ := model.L1L2L3Interval(*w, p)
		fmt.Print(ch.DOT("L1L2L3"))
	case "moody":
		ch, _, _, err := model.MoodyPeriod(*w, model.NewMoodySchedule(*n1, *n2), p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chainviz:", err)
			os.Exit(1)
		}
		fmt.Print(ch.DOT("Moody"))
	default:
		fmt.Fprintf(os.Stderr, "chainviz: unknown chain %q\n", *chain)
		os.Exit(2)
	}
}
