// Command aicsim runs a single benchmark under one checkpointing policy
// and prints the measured interval trace, the Eq. (1) NET² evaluation, and
// (optionally) the Monte Carlo cross-validation.
//
// Examples:
//
//	aicsim -benchmark milc -policy aic
//	aicsim -benchmark sjeng -policy sic -scale 2 -trace
//	aicsim -benchmark lbm -policy moody -validate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aic"
)

func main() {
	benchmark := flag.String("benchmark", "milc", "bzip2 | sjeng | libquantum | milc | lbm | sphinx3")
	policy := flag.String("policy", "aic", "aic | sic | moody")
	compressor := flag.String("compressor", "pa", "pa | xdelta3 | xor")
	scale := flag.Float64("scale", 1, "system-size multiplier")
	rate := flag.Float64("lambda", 1e-3, "total failure rate (1/s)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	interval := flag.Float64("interval", 0, "fixed checkpoint interval override (s)")
	fullEvery := flag.Int("fullevery", 0, "replace every N-th incremental checkpoint with a full one (0 = never)")
	trace := flag.Bool("trace", false, "print the per-interval trace")
	validate := flag.Bool("validate", false, "cross-check NET² with the event-driven Monte Carlo simulator")
	flag.Parse()

	opts := aic.Options{
		Scale:               *scale,
		FailureRate:         *rate,
		Seed:                *seed,
		FixedInterval:       *interval,
		FullCheckpointEvery: *fullEvery,
	}
	switch strings.ToLower(*policy) {
	case "aic":
		opts.Policy = aic.AIC
	case "sic":
		opts.Policy = aic.SIC
	case "moody":
		opts.Policy = aic.Moody
	default:
		fmt.Fprintf(os.Stderr, "aicsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	switch strings.ToLower(*compressor) {
	case "pa", "xdelta3-pa":
		opts.Compressor = aic.Xdelta3PA
	case "xdelta3", "whole":
		opts.Compressor = aic.Xdelta3
	case "xor", "xor-rle":
		opts.Compressor = aic.XORRLE
	default:
		fmt.Fprintf(os.Stderr, "aicsim: unknown compressor %q\n", *compressor)
		os.Exit(2)
	}

	report, err := aic.RunBenchmark(*benchmark, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aicsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s under %v (%v compressor, scale %gx, λ=%g)\n",
		report.Benchmark, report.Policy, opts.Compressor, *scale, *rate)
	fmt.Printf("  base time    %8.0f s\n", report.BaseTime)
	fmt.Printf("  wall time    %8.0f s  (+%.1f%% no-failure overhead)\n", report.WallTime, report.OverheadPct)
	fmt.Printf("  checkpoints  %8d\n", len(report.Intervals))
	fmt.Printf("  compression  %8.2f\n", report.CompressionRatio)
	fmt.Printf("  NET²         %8.4f\n", report.NET2)

	if *trace {
		fmt.Println("\nintervals:")
		for i, iv := range report.Intervals {
			fmt.Printf("  #%-3d t=[%6.0f..%6.0f]  w=%6.1f  c1=%6.2fs  dl=%6.1fs  ds=%8.2f MiB  c3=%7.1fs  dirty=%d\n",
				i, iv.Start, iv.End, iv.W, iv.C1, iv.DeltaLatency, iv.DeltaSize/(1<<20), iv.C3, iv.DirtyPages)
		}
	}
	if *validate {
		analytic, empirical, err := report.Validate(20000, *seed+1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aicsim: validate:", err)
			os.Exit(1)
		}
		fmt.Printf("\nvalidation: Eq.(1) Markov NET² = %.4f, event-driven Monte Carlo = %.4f (Δ %.2f%%)\n",
			analytic, empirical, 100*(empirical-analytic)/analytic)
	}
}
