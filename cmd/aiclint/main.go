// Command aiclint runs the project-invariant analyzer suite over the given
// package patterns (./... by default) and exits non-zero when any
// invariant is violated. The analyzers prove, per build, the rules
// the rest of the repo can only test probabilistically:
//
//	durablefs    storage does filesystem I/O through the FS shim, and
//	             fsyncs temp files before renaming them into place
//	sentinelerr  error sentinels are compared with errors.Is, never ==
//	ctxflow      contexts are threaded from callers, not minted mid-stack
//	lockio       no file or network I/O while holding a mutex
//	detrand      simulation packages stay seed-deterministic
//	metricnames  metric registrations keep the stable, unit-suffixed
//	             snake_case surface DESIGN.md §14 documents
//	facadedoc    the facade package documents every exported symbol,
//	             leading with the symbol's name
//
// Four analyzers run over the whole program at once, on the
// interprocedural engine (internal/analysis/interproc) — call graph,
// effect summaries and lock sets propagated to a fixpoint across every
// loaded package:
//
//	durableflow  a commit ack (group-commit done-channel send, remote
//	             kindPutDone reply) is dominated by fsync+rename+dir-fsync,
//	             and every Store implementation's Put reaches durability
//	lockorder    the global lock-acquisition-order graph is cycle-free;
//	             cycles print their acquisition chains
//	goroleak     goroutines have shutdown edges; tickers and timers are
//	             stopped; no time.After inside loops
//	atomicfield  a field accessed via sync/atomic anywhere is accessed
//	             that way everywhere (test files included)
//
// A deliberate exception is suppressed in place with a reasoned directive:
//
//	//aiclint:ignore lockio r.mu is the connection-ownership lock by design
//
// See DESIGN.md §12 and §17 for each analyzer's exact rule and
// suppression policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"aic/internal/analysis"
	"aic/internal/analysis/atomicfield"
	"aic/internal/analysis/ctxflow"
	"aic/internal/analysis/detrand"
	"aic/internal/analysis/durableflow"
	"aic/internal/analysis/durablefs"
	"aic/internal/analysis/facadedoc"
	"aic/internal/analysis/goroleak"
	"aic/internal/analysis/lockio"
	"aic/internal/analysis/lockorder"
	"aic/internal/analysis/metricnames"
	"aic/internal/analysis/sentinelerr"
)

var suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	ctxflow.Analyzer,
	detrand.Analyzer,
	durableflow.Analyzer,
	durablefs.Analyzer,
	facadedoc.Analyzer,
	goroleak.Analyzer,
	lockio.Analyzer,
	lockorder.Analyzer,
	metricnames.Analyzer,
	sentinelerr.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aiclint [packages]\n\nanalyzers:")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiclint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiclint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aiclint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
