// Command aicsoak soaks the whole checkpointing stack under seeded fault
// injection: a simulated workload runs through the real delta builder, the
// crash-safe local store and a three-peer replication cluster while the
// schedule derived from the seed injects torn writes, bit flips, connection
// cuts, peer deaths and process crashes; every failure is followed by a
// full recovery and a cross-layer invariant sweep (see internal/chaos).
//
// Usage:
//
//	aicsoak                      # soak one seed
//	aicsoak -seed 7 -seeds 100   # soak seeds 7..106
//	aicsoak -run-forever         # soak until an invariant breaks
//	aicsoak -seed 7 -schedule f  # replay a failing schedule exactly
//
// On an invariant violation the failing seed and a minimized, replayable
// fault schedule are printed and the process exits 1. Replays are exact:
// the harness is deterministic in (seed, schedule), so a printed schedule
// reproduces its violation byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"aic/internal/chaos"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "first seed to soak (also the seed a -schedule replay runs under)")
		seeds      = flag.Int("seeds", 1, "number of consecutive seeds to soak")
		runForever = flag.Bool("run-forever", false, "keep soaking consecutive seeds until an invariant breaks")
		steps      = flag.Int("steps", 0, "workload steps per run (0 = harness default)")
		events     = flag.Int("events", 0, "target fault events per run (0 = harness default)")
		pages      = flag.Int("pages", 0, "workload footprint in pages (0 = harness default)")
		ckptEvery  = flag.Int("ckpt-every", 0, "steps between checkpoints (0 = harness default)")
		fullEvery  = flag.Int("full-every", 0, "checkpoints between fulls (0 = harness default)")
		workers    = flag.Int("parallelism", 0, "delta-encoder workers (0 = all cores)")
		schedule   = flag.String("schedule", "", "replay the fault schedule in this file instead of generating one")
		minimize   = flag.Bool("minimize", true, "minimize a failing schedule before printing it")
		verbose    = flag.Bool("v", false, "stream the run transcript to stderr")
	)
	flag.Parse()

	mkcfg := func(s uint64) chaos.Config {
		cfg := chaos.Config{
			Seed:            s,
			Steps:           *steps,
			CheckpointEvery: *ckptEvery,
			FullEvery:       *fullEvery,
			Pages:           *pages,
			Events:          *events,
			Parallelism:     *workers,
		}
		if *verbose {
			cfg.Log = os.Stderr
		}
		return cfg
	}

	ctx := context.Background()
	fail := func(cfg chaos.Config, res *chaos.Result) {
		sched := res.Schedule
		if *minimize {
			if min := chaos.Minimize(ctx, cfg, sched); len(min) < len(sched) {
				fmt.Fprintf(os.Stderr, "aicsoak: minimized schedule from %d to %d events\n", len(sched), len(min))
				if r, err := chaos.RunSchedule(ctx, cfg, min); err == nil && r.Failed() {
					res = r
				}
			}
		}
		fmt.Print(res.FailureReport())
		fmt.Printf("replay: aicsoak -seed %d -schedule <file with the schedule above>\n", res.Seed)
		os.Exit(1)
	}

	if *schedule != "" {
		text, err := os.ReadFile(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicsoak: %v\n", err)
			os.Exit(2)
		}
		sched, err := chaos.ParseSchedule(string(text))
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicsoak: %v\n", err)
			os.Exit(2)
		}
		cfg := mkcfg(*seed)
		res, err := chaos.RunSchedule(ctx, cfg, sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicsoak: %v\n", err)
			os.Exit(2)
		}
		if res.Failed() {
			fail(cfg, res)
		}
		fmt.Printf("seed=%d replay ok: %d checkpoints, %d recoveries, %d eras, %d degraded appends\n",
			res.Seed, res.Checkpoints, res.Recoveries, res.Eras, res.Degraded)
		return
	}

	for i := 0; ; i++ {
		s := *seed + uint64(i)
		cfg := mkcfg(s)
		res, err := chaos.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aicsoak: seed %d: %v\n", s, err)
			os.Exit(2)
		}
		if res.Failed() {
			fail(cfg, res)
		}
		fmt.Printf("seed=%d ok: %d faults, %d checkpoints, %d recoveries, %d eras, %d degraded appends\n",
			s, len(res.Schedule), res.Checkpoints, res.Recoveries, res.Eras, res.Degraded)
		if !*runForever && i+1 >= *seeds {
			return
		}
	}
}
