package aic

import (
	"context"
	"errors"
	"testing"

	"aic/internal/storage"
)

// ringStores builds n named in-process stores for a test ring.
func ringStores(n int) map[string]Store {
	out := make(map[string]Store, n)
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + "-peer"
		out[name] = storage.NewLevelStore(storage.Target{Name: name})
	}
	return out
}

func newTestClient(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientNamespaceIsolation(t *testing.T) {
	ctx := context.Background()
	c := newTestClient(t, ClientConfig{Stores: ringStores(3), Replicas: 2})
	p, chain := buildProcessChain(t)

	for _, tenant := range []string{"acme", "globex"} {
		ns := c.Namespace(tenant)
		for seq, enc := range chain {
			if err := ns.Checkpoint(ctx, "web", seq, enc); err != nil {
				t.Fatalf("%s checkpoint %d: %v", tenant, seq, err)
			}
		}
	}
	// Same proc name, isolated chains: each tenant restores its own.
	for _, tenant := range []string{"acme", "globex"} {
		im, rep, err := c.Namespace(tenant).Restore(ctx, "web")
		if err != nil {
			t.Fatalf("%s restore: %v", tenant, err)
		}
		if !im.Matches(p) {
			t.Fatalf("%s restored image differs", tenant)
		}
		if rep.LastSeq != len(chain)-1 {
			t.Fatalf("%s restored through seq %d, want %d", tenant, rep.LastSeq, len(chain)-1)
		}
	}
	// Removing one tenant's chain leaves the other's intact.
	if err := c.Namespace("acme").Remove(ctx, "web"); err != nil {
		t.Fatal(err)
	}
	if procs, _ := c.Namespace("acme").Procs(ctx); len(procs) != 0 {
		t.Fatalf("acme still lists %v", procs)
	}
	if procs, _ := c.Namespace("globex").Procs(ctx); len(procs) != 1 || procs[0] != "web" {
		t.Fatalf("globex lists %v", procs)
	}
}

func TestClientRejectsReservedNames(t *testing.T) {
	ctx := context.Background()
	c := newTestClient(t, ClientConfig{Stores: ringStores(2), Replicas: 1})
	for _, proc := range []string{"a@b", "a#s0of2", ""} {
		err := c.Namespace("acme").Checkpoint(ctx, proc, 0, []byte("x"))
		if !errors.Is(err, ErrBadProcName) {
			t.Fatalf("proc %q: %v, want ErrBadProcName", proc, err)
		}
	}
	if err := c.Namespace("bad tenant").Checkpoint(ctx, "web", 0, []byte("x")); !errors.Is(err, ErrBadProcName) {
		t.Fatalf("bad tenant: %v, want ErrBadProcName", err)
	}
}

func TestClientStripedCheckpointRestore(t *testing.T) {
	ctx := context.Background()
	stores := ringStores(4)
	c := newTestClient(t, ClientConfig{
		Stores: stores, Replicas: 2,
		StripeThreshold: 64, StripeCount: 3,
	})
	p, chain := buildProcessChain(t)
	ns := c.Namespace("acme")
	for seq, enc := range chain {
		if err := ns.Checkpoint(ctx, "big", seq, enc); err != nil {
			t.Fatalf("checkpoint %d: %v", seq, err)
		}
	}
	// The full checkpoint exceeded the threshold, so stripe chains exist on
	// the flat stores while the namespace hides them.
	stripes := 0
	for _, st := range stores {
		names, err := st.(*storage.LevelStore).List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if _, _, stripe := storage.ParseKey(name); stripe != "" {
				stripes++
			}
		}
	}
	if stripes == 0 {
		t.Fatal("no stripe chains were written")
	}
	if procs, err := ns.Procs(ctx); err != nil || len(procs) != 1 || procs[0] != "big" {
		t.Fatalf("Procs = (%v, %v), want [big]", procs, err)
	}
	// Chain reassembles transparently; restore is byte-identical.
	raw, err := ns.Chain(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(chain) {
		t.Fatalf("chain length %d, want %d", len(raw), len(chain))
	}
	for i := range raw {
		if string(raw[i]) != string(chain[i]) {
			t.Fatalf("chain element %d differs after reassembly", i)
		}
	}
	im, _, err := ns.Restore(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !im.Matches(p) {
		t.Fatal("restored image differs")
	}
	// Truncate and Remove reach the stripe chains too.
	if err := ns.Remove(ctx, "big"); err != nil {
		t.Fatal(err)
	}
	for name, st := range stores {
		names, _ := st.(*storage.LevelStore).List(ctx)
		if len(names) != 0 {
			t.Fatalf("peer %s still holds %v after Remove", name, names)
		}
	}
}

func TestClientRestoreSurvivesPeerLoss(t *testing.T) {
	ctx := context.Background()
	stores := ringStores(3)
	c := newTestClient(t, ClientConfig{Stores: stores, Replicas: 2})
	p, chain := buildProcessChain(t)
	ns := c.Namespace("acme")
	for seq, enc := range chain {
		if err := ns.Checkpoint(ctx, "web", seq, enc); err != nil {
			t.Fatalf("checkpoint %d: %v", seq, err)
		}
	}
	// Kill the chain's primary: with Replicas=2 the surviving replica still
	// restores the full chain.
	peers, _, err := c.placement(storage.Qualify("acme", "web"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePeer(peers[0]); err != nil {
		t.Fatal(err)
	}
	im, rep, err := ns.Restore(ctx, "web")
	if err != nil {
		t.Fatalf("restore after peer loss: %v", err)
	}
	if !im.Matches(p) || rep.LastSeq != len(chain)-1 {
		t.Fatalf("degraded restore incomplete: lastSeq %d", rep.LastSeq)
	}
}

func TestClientRebalanceAfterJoin(t *testing.T) {
	ctx := context.Background()
	stores := ringStores(3)
	reg := NewMetricsRegistry()
	c := newTestClient(t, ClientConfig{Stores: stores, Replicas: 2, Metrics: reg})
	_, chain := buildProcessChain(t)
	for _, tenant := range []string{"acme", "globex"} {
		ns := c.Namespace(tenant)
		for i := 0; i < 8; i++ {
			proc := "proc" + string(rune('0'+i))
			for seq, enc := range chain {
				if err := ns.Checkpoint(ctx, proc, seq, enc); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	joiner := storage.NewLevelStore(storage.Target{Name: "joiner"})
	if err := c.AddStore("z-joiner", joiner); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deferred) != 0 {
		t.Fatalf("deferred: %v", rep.Deferred)
	}
	if rep.Moves == 0 {
		t.Fatal("join moved no chains")
	}
	if v, ok := reg.Value("aic_ring_rebalance_total"); !ok || v != 1 {
		t.Fatalf("aic_ring_rebalance_total = (%v, %v)", v, ok)
	}
	// Every chain restores byte-identically on the new membership, and every
	// current replica holds its full chain.
	for _, tenant := range []string{"acme", "globex"} {
		ns := c.Namespace(tenant)
		for i := 0; i < 8; i++ {
			proc := "proc" + string(rune('0'+i))
			raw, err := ns.Chain(ctx, proc)
			if err != nil {
				t.Fatalf("%s/%s after rebalance: %v", tenant, proc, err)
			}
			for j := range raw {
				if string(raw[j]) != string(chain[j]) {
					t.Fatalf("%s/%s element %d differs after rebalance", tenant, proc, j)
				}
			}
		}
	}
	// A second round over settled membership is a no-op.
	rep2, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Moves != 0 {
		t.Fatalf("settled ring still moved %d chains", rep2.Moves)
	}
}

func TestClientQuorumFailure(t *testing.T) {
	ctx := context.Background()
	// Single unreachable peer: no element can reach quorum.
	c := newTestClient(t, ClientConfig{
		Stores: map[string]Store{"dark": brokenStore{}}, Replicas: 1,
	})
	err := c.Namespace("acme").Checkpoint(ctx, "web", 0, []byte("x"))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("checkpoint against dark ring: %v, want ErrNoQuorum", err)
	}
}

// brokenStore fails every operation — an unreachable ring peer.
type brokenStore struct{}

var errDark = errors.New("peer dark")

func (brokenStore) Put(context.Context, string, int, []byte) error { return errDark }
func (brokenStore) Get(context.Context, string) ([]Stored, []int, error) {
	return nil, nil, errDark
}
func (brokenStore) List(context.Context) ([]string, error)      { return nil, errDark }
func (brokenStore) Delete(context.Context, string) error        { return errDark }
func (brokenStore) Truncate(context.Context, string, int) error { return errDark }
func (brokenStore) Target() StoreTarget                         { return StoreTarget{} }
func (brokenStore) Scrub(context.Context, string, bool) (*StoreScrubReport, error) {
	return nil, errDark
}
