module aic

go 1.22
