package aic

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// buildProcessChain makes a small full+delta chain via the public facade.
func buildProcessChain(t *testing.T) (*Process, [][]byte) {
	t.Helper()
	p := NewProcess(256)
	p.Write(0, 0, []byte("base page zero"))
	p.Write(1, 0, []byte("base page one"))
	chain := [][]byte{p.FullCheckpoint()}
	for step := 0; step < 3; step++ {
		p.Advance(1)
		p.Write(uint64(step%2), step*8, []byte("delta!"))
		enc, _ := p.DeltaCheckpoint()
		chain = append(chain, enc)
	}
	return p, chain
}

func TestRestoreLatestGoodPublicIntact(t *testing.T) {
	p, chain := buildProcessChain(t)
	im, rep, err := RestoreLatestGood(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Matches(p) {
		t.Fatal("intact chain must restore the live image")
	}
	if rep.LastSeq != len(chain)-1 || len(rep.Discarded) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRestoreLatestGoodPublicCorruptTail(t *testing.T) {
	_, chain := buildProcessChain(t)
	// Tear the last two elements: the restore must back up to position 1.
	chain[2] = chain[2][:len(chain[2])/2]
	chain[3] = []byte("junk")
	im, rep, err := RestoreLatestGood(chain)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastSeq != 1 || len(rep.Corrupt) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	want, err := RestoreImage(chain[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !im.as.Equal(want.as) {
		t.Fatal("prefix image mismatch")
	}
	// RestoreImage on the same damaged chain fails hard — the contrast
	// RestoreLatestGood exists for.
	if _, err := RestoreImage(chain); err == nil {
		t.Fatal("RestoreImage accepted a corrupt chain")
	}
}

func TestRestoreLatestGoodPublicErrors(t *testing.T) {
	if _, _, err := RestoreLatestGood(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, _, err := RestoreLatestGood([][]byte{[]byte("junk")}); err == nil {
		t.Fatal("anchorless chain accepted")
	}
}

func TestCheckpointDirScrubAndRestoreLatestGood(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCheckpointDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, chain := buildProcessChain(t)
	for seq, enc := range chain {
		if err := store.Append(context.Background(), "job", seq, enc); err != nil {
			t.Fatal(err)
		}
	}
	procs, err := store.Procs(context.Background())
	if err != nil || len(procs) != 1 || procs[0] != "job" {
		t.Fatalf("procs = %v, %v", procs, err)
	}
	rep, err := store.Scrub(context.Background(), "job", false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store not clean: %+v", rep)
	}

	// Corrupt the tail on disk; the store must self-heal and restore the
	// newest intact prefix.
	name := filepath.Join(dir, "job", "ckpt-00000003.aic")
	if err := os.WriteFile(name, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = store.Scrub(context.Background(), "job", true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || len(rep.Corrupt) != 1 || rep.Corrupt[0] != 3 {
		t.Fatalf("scrub report = %+v", rep)
	}
	im, good, err := store.RestoreLatestGood(context.Background(), "job")
	if err != nil {
		t.Fatal(err)
	}
	if good.LastSeq != 2 {
		t.Fatalf("restored through %d, want 2", good.LastSeq)
	}
	want, err := RestoreImage(chain[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !im.as.Equal(want.as) {
		t.Fatal("prefix image mismatch")
	}
}

func TestCheckpointDirRestoreLatestGoodEmpty(t *testing.T) {
	store, err := OpenCheckpointDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.RestoreLatestGood(context.Background(), "nobody"); err == nil {
		t.Fatal("empty process restored")
	}
}
