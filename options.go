package aic

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aic/internal/ckpt"
	"aic/internal/compact"
	"aic/internal/control"
	"aic/internal/metrics"
	"aic/internal/remote"
	"aic/internal/storage"
)

// Store is the checkpoint storage contract the facade programs against:
// anything satisfying it — the built-in directory store, an in-memory
// model store, a networked replication peer — can back a CheckpointDir.
// It is an alias for the internal interface, so the facade, the recovery
// manager and the replication transport all agree on one type.
type Store = storage.Store

// Stored is one element of a stored checkpoint chain.
type Stored = storage.Stored

// StoreTarget models a store's bandwidth/latency (used by the simulation
// paths; a zero value is fine for real storage).
type StoreTarget = storage.Target

// StoreScrubReport is the store-level scrub report type custom Store
// implementations return; CheckpointDir.Scrub re-exposes it in facade shape.
type StoreScrubReport = storage.ScrubReport

// ErrDegraded marks a checkpoint that is durable locally but failed to reach
// its replication quorum: the system keeps running in degraded local-only
// mode, and the caller decides whether that redundancy loss is tolerable.
var ErrDegraded = errors.New("aic: replication degraded to local-only")

// ErrBadProcName reports a process name every Store rejects at its
// boundary: empty, containing a path separator or NUL byte, or a "." /
// ".." directory reference. Rejection happens before any I/O, locally and
// across the replication wire alike; match with errors.Is. At the
// multi-tenant client boundary the rule is stricter: "@" and "#" are
// reserved for tenant namespacing and stripe chains.
var ErrBadProcName = storage.ErrBadProcName

// ErrQuotaExceeded reports a checkpoint rejected by its tenant's
// admission quota (bytes or chain count). It is terminal — retrying
// cannot free quota — and crosses the replication wire intact; match with
// errors.Is.
var ErrQuotaExceeded = storage.ErrQuotaExceeded

// TenantQuota is the per-tenant admission limit enforced by a quota-
// wrapped store (cmd/aicd's -quota-bytes / -quota-chains flags, or a
// storage.QuotaStore in process). Zero fields are unlimited.
type TenantQuota = storage.Quota

// DegradedError carries the quorum failure behind an ErrDegraded result.
type DegradedError struct {
	Op  string
	Err error
}

// Error renders the degraded sentinel, the failed op, and the cause.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("%v: %s: %v", ErrDegraded, e.Op, e.Err)
}

// Unwrap exposes the underlying quorum error (a storage.QuorumError when
// the peer fan-out missed quorum).
func (e *DegradedError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrDegraded) true for DegradedError values.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Replication configures checkpoint fan-out to peer stores.
type Replication struct {
	// Peers are replication server addresses (host:port) reached over the
	// wire protocol (see cmd/aicd).
	Peers []string
	// Stores are pre-built peer stores appended after the dialed Peers —
	// custom transports, or in-process stores in tests.
	Stores []Store
	// Quorum is how many peers must acknowledge a checkpoint before the
	// append counts as replicated; 0 selects a majority of the peers.
	Quorum int
	// DialTimeout, OpTimeout and Retries tune the per-peer client's
	// robustness envelope; zero values select the remote package defaults
	// (5s, 30s, 4 retries with exponential backoff and jitter).
	DialTimeout time.Duration
	OpTimeout   time.Duration
	Retries     int
	// JitterSeed pins the per-peer backoff-jitter RNG so retry schedules
	// replay deterministically (peer i is seeded JitterSeed+i); 0 keeps the
	// default wall-clock seeding.
	JitterSeed int64
}

// DedupConfig tunes the content-addressed chunk store behind WithDedup:
// the content-defined chunking geometry (min/avg/max chunk sizes) and the
// payload floor below which checkpoints are stored raw. The zero value
// selects the storage package defaults (2 KiB / 8 KiB / 64 KiB).
type DedupConfig = storage.DedupConfig

// DedupStats is a point-in-time snapshot of the chunk store: live chunk
// count, logical bytes referenced by recipes, and physical chunk bytes on
// disk. Ratio() is the dedup factor.
type DedupStats = storage.DedupStats

// CompactionConfig tunes the online chain compactor behind WithCompaction.
type CompactionConfig struct {
	// MaxChain is the chain length that triggers compaction; 0 selects the
	// compactor default (32).
	MaxChain int
	// Keep is how many newest elements survive a compaction — the keep-k
	// retention bound on restore rewind cost; 0 selects the default (8).
	Keep int
	// Interval is the period of the background loop RunCompaction drives
	// when called with a non-positive interval; 0 selects one minute.
	Interval time.Duration
	// DisableGC skips the chunk-store garbage collection that normally
	// follows each compaction pass on a dedup-enabled directory store.
	DisableGC bool
}

// CompactionReport summarizes one compaction pass: chains examined,
// rewritten, raced and skipped, elements folded away, and chunks the
// post-pass garbage collection reclaimed.
type CompactionReport = compact.Report

// ErrCompactRaced reports a compaction flip abandoned because a writer
// mutated the chain between the compactor's read and its anchor install.
// It is benign — the store is untouched and the next pass retries on a
// fresh view; match with errors.Is.
var ErrCompactRaced = storage.ErrCompactRaced

// Option configures the facade constructors (NewProcess,
// OpenCheckpointDir). Options irrelevant to a constructor are ignored, so
// one option set can configure a whole deployment.
type Option func(*config)

type config struct {
	parallelism int
	store       Store
	repl        *Replication
	metrics     *metrics.Registry
	adaptive    *control.Config
	dedup       *storage.DedupConfig
	compaction  *CompactionConfig
}

// WithParallelism sets the number of workers a Process's delta encoder fans
// dirty pages across: 0 (the default) uses all of GOMAXPROCS — the paper's
// dedicated-core compression model — and 1 forces the serial encoder. The
// encoded stream is byte-identical either way, so the knob only trades
// latency against core usage.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithStore backs a CheckpointDir with a custom Store instead of the
// default directory store (the dir argument is then ignored).
func WithStore(s Store) Option {
	return func(c *config) { c.store = s }
}

// WithReplication fans every CheckpointDir.Append out to the configured
// peer group after the local write succeeds. See Replication and
// CheckpointDir.Append for the degraded-mode semantics.
func WithReplication(r Replication) Option {
	return func(c *config) { c.repl = &r }
}

// WithMetrics instruments the CheckpointDir and every layer beneath it —
// the directory store's group commit and fsyncs, the replication clients,
// the quorum fan-out — against reg. DESIGN.md §14 documents the metric
// surface; serve reg.Handler() at /metrics for Prometheus scraping.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(c *config) { c.metrics = reg }
}

// WithDedup turns on chunk-level content-addressed storage in the
// directory store: every checkpoint is cut into content-defined chunks,
// chunks are stored once under their SHA-256 identity with durable
// refcounts, and identical content across processes, sequence numbers and
// tenants shares disk. Restores are byte-identical and content-verified
// end to end. Requires the default directory store or a WithStore-supplied
// *storage.FSStore; OpenCheckpointDir fails otherwise. See DESIGN.md §16.
func WithDedup(cfg DedupConfig) Option {
	return func(c *config) { cc := cfg; c.dedup = &cc }
}

// WithCompaction arms the online chain compactor: chains longer than
// MaxChain are folded into a fresh full anchor plus the Keep newest
// elements, without pausing writers, and (on a dedup-enabled store) the
// chunks the folded prefix referenced are garbage-collected. Drive it via
// CheckpointDir.Compact for one pass or CheckpointDir.RunCompaction for
// the background loop. Requires a store implementing anchor replacement
// (the directory store and storage.LevelStore both do);
// OpenCheckpointDir fails otherwise.
func WithCompaction(cfg CompactionConfig) Option {
	return func(c *config) { cc := cfg; c.compaction = &cc }
}

// WithAdaptiveControl installs a saturation controller over the directory:
// it watches fsync latency and group-commit queue depth and walks the shed
// ladder (wider interval → serial encode → local-only) with hysteresis.
// The CheckpointDir itself is the actuator — see IntervalScale,
// EncodeParallelism and the Append fan-out gate. Implies WithMetrics (a
// private registry is created when none was supplied); the controller is
// returned by CheckpointDir.Controller and must be driven via Step or Run.
func WithAdaptiveControl(cfg AdaptiveControlConfig) Option {
	return func(c *config) { cc := cfg; c.adaptive = &cc }
}

func buildConfig(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// OpenCheckpointDir opens (creating if needed) a checkpoint directory.
// Options may replace the backing store (WithStore) and add peer
// replication (WithReplication).
//
// Deprecated: OpenCheckpointDir remains fully supported for single-node,
// single-namespace deployments, but new multi-peer code should use
// NewClient, which adds consistent-hash placement, tenant namespaces,
// per-tenant quotas and striped large checkpoints on the same wire
// protocol. A CheckpointDir maps onto the default tenant: chains it wrote
// are readable through NewClient's Namespace("default") unchanged.
func OpenCheckpointDir(dir string, opts ...Option) (*CheckpointDir, error) {
	c := buildConfig(opts)
	local := c.store
	if local == nil {
		fs, err := storage.NewFSStore(dir, storage.Target{Name: "dir"})
		if err != nil {
			return nil, err
		}
		local = fs
	}
	if c.adaptive != nil && c.metrics == nil {
		c.metrics = metrics.NewRegistry()
	}
	d := &CheckpointDir{local: local}
	if c.metrics != nil {
		if fs, ok := local.(*storage.FSStore); ok {
			fs.SetMetrics(c.metrics)
		}
		d.reg = c.metrics
		d.met = newDirMetrics(c.metrics)
	}
	if c.dedup != nil {
		fs, ok := local.(*storage.FSStore)
		if !ok {
			return nil, fmt.Errorf("aic: WithDedup requires the directory store, got %T", local)
		}
		// The enable scan walks the local directory once at construction,
		// before any caller context exists.
		//aiclint:ignore ctxflow construction-time local index rebuild; no caller context exists yet
		if err := fs.EnableDedup(context.Background(), *c.dedup); err != nil {
			return nil, fmt.Errorf("aic: dedup: %w", err)
		}
	}
	if c.compaction != nil {
		cs, ok := local.(compact.Store)
		if !ok {
			return nil, fmt.Errorf("aic: WithCompaction requires a store with anchor replacement, got %T", local)
		}
		d.comp = compact.New(cs, compact.Config{
			MaxChain:  c.compaction.MaxChain,
			Keep:      c.compaction.Keep,
			DisableGC: c.compaction.DisableGC,
			Metrics:   c.metrics,
		})
		d.compInterval = c.compaction.Interval
	}
	if c.repl == nil {
		finishAdaptive(d, c)
		return d, nil
	}
	var (
		peers   []storage.Store
		remotes []*remote.RemoteStore
	)
	for i, addr := range c.repl.Peers {
		jitter := c.repl.JitterSeed
		if jitter != 0 {
			jitter += int64(i)
		}
		rs := remote.NewStore(addr, remote.Config{
			DialTimeout: c.repl.DialTimeout,
			OpTimeout:   c.repl.OpTimeout,
			Retries:     c.repl.Retries,
			JitterSeed:  jitter,
			Metrics:     c.metrics,
		})
		remotes = append(remotes, rs)
		peers = append(peers, rs)
	}
	for _, s := range c.repl.Stores {
		peers = append(peers, s)
	}
	group, err := storage.NewReplicatedStore(c.repl.Quorum, peers...)
	if err != nil {
		for _, rs := range remotes {
			rs.Close()
		}
		return nil, fmt.Errorf("aic: replication: %w", err)
	}
	group.SetMetrics(c.metrics)
	d.peers = group
	d.closer = func() error {
		var first error
		for _, rs := range remotes {
			if err := rs.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	finishAdaptive(d, c)
	return d, nil
}

// finishAdaptive installs the saturation controller once the directory is
// fully assembled (the CheckpointDir is the controller's actuator, so its
// peers/metrics wiring must be complete first).
func finishAdaptive(d *CheckpointDir, c config) {
	if c.adaptive == nil {
		return
	}
	d.ctrl = control.New(*c.adaptive, control.NewRegistryCollector(c.metrics), d, c.metrics)
}

// applyProcessOptions wires constructor options into a Process.
func applyProcessOptions(p *Process, opts []Option) {
	c := buildConfig(opts)
	if c.parallelism != 0 {
		ckpt.WithParallelism(c.parallelism)(p.builder)
	}
}
