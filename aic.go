// Package aic is the public API of the AIC reproduction: adaptive
// incremental checkpointing with delta compression for networked multicore
// systems (Jangjaimon & Tzeng, IPDPS 2013).
//
// The package runs simulated processes under three checkpointing policies —
// AIC (the paper's adaptive mechanism), SIC (static incremental
// checkpointing with compression) and Moody (sequential multi-level
// checkpointing, the state-of-the-art baseline the paper compares against) —
// and evaluates the normalized expected turnaround time NET² with the
// paper's concurrent multi-level Markov model. It also exposes every
// experiment of the paper's evaluation section by name.
//
// Quick start:
//
//	report, err := aic.RunBenchmark("milc", aic.Options{Policy: aic.AIC})
//	...
//	fmt.Printf("NET² = %.4f\n", report.NET2)
//
// Custom workloads are described with a ProgramSpec (footprint, phase
// schedule, content mutation styles) and run with RunProgram.
package aic

import (
	"fmt"
	"math"

	"aic/internal/core"
	"aic/internal/exp"
	"aic/internal/failure"
	"aic/internal/sim"
	"aic/internal/storage"
	"aic/internal/workload"
)

// Policy selects the checkpointing policy.
type Policy int

// The three policies of the paper's evaluation.
const (
	AIC   Policy = iota // adaptive incremental checkpointing (the paper)
	SIC                 // static incremental checkpointing with compression
	Moody               // sequential periodic full checkpoints (baseline)
)

// String names the policy.
func (p Policy) String() string { return core.PolicyKind(p).String() }

// Compressor selects the delta compressor for AIC/SIC checkpoints.
type Compressor int

// Compressor variants.
const (
	Xdelta3PA Compressor = iota // page-aligned (the paper's Xdelta3-PA, default)
	Xdelta3                     // conventional whole-file delta
	XORRLE                      // XOR + run-length baseline
)

// String names the compressor.
func (c Compressor) String() string { return core.CompressorKind(c).String() }

// Options configures a run.
type Options struct {
	// Policy is the checkpointing policy (default AIC).
	Policy Policy
	// Scale is the system-size multiplier (default 1 = the Coastal
	// cluster profile); remote-storage bandwidth per node shrinks with it.
	Scale float64
	// FailureRate is the total failure rate λ in 1/s, split across levels
	// by the Coastal proportions (default 1e-3, the paper's Section V.C
	// setting).
	FailureRate float64
	// Seed makes runs deterministic (default 42).
	Seed uint64
	// FixedInterval overrides the checkpoint interval for SIC/Moody; 0
	// derives the optimum from the models (SIC profiles first).
	FixedInterval float64
	// Compressor selects the delta compressor (default Xdelta3PA).
	Compressor Compressor
	// FullCheckpointEvery replaces every N-th incremental checkpoint with a
	// full one, bounding restore chains (0 = only the initial full).
	FullCheckpointEvery int
}

// Validate rejects nonsensical option values with a descriptive error.
// Zero values are fine — they select defaults — but negative rates, NaN or
// infinite parameters, and unknown enum values indicate caller bugs better
// reported than silently "corrected". RunBenchmark and RunProgram call it.
func (o Options) Validate() error {
	if o.Policy < AIC || o.Policy > Moody {
		return fmt.Errorf("aic: unknown policy %d", int(o.Policy))
	}
	if o.Compressor < Xdelta3PA || o.Compressor > XORRLE {
		return fmt.Errorf("aic: unknown compressor %d", int(o.Compressor))
	}
	if math.IsNaN(o.Scale) || math.IsInf(o.Scale, 0) || o.Scale < 0 {
		return fmt.Errorf("aic: invalid Scale %v (want a positive multiplier, or 0 for the default)", o.Scale)
	}
	if math.IsNaN(o.FailureRate) || math.IsInf(o.FailureRate, 0) || o.FailureRate < 0 {
		return fmt.Errorf("aic: invalid FailureRate %v (want λ ≥ 0 in 1/s, 0 for the default)", o.FailureRate)
	}
	if math.IsNaN(o.FixedInterval) || math.IsInf(o.FixedInterval, 0) || o.FixedInterval < 0 {
		return fmt.Errorf("aic: invalid FixedInterval %v (want seconds ≥ 0, 0 to derive the optimum)", o.FixedInterval)
	}
	if o.FullCheckpointEvery < 0 {
		return fmt.Errorf("aic: invalid FullCheckpointEvery %d (want ≥ 0)", o.FullCheckpointEvery)
	}
	return nil
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.FailureRate <= 0 {
		o.FailureRate = 1e-3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) lambda() [3]float64 {
	return failure.SplitRate(o.FailureRate, failure.CoastalProportions())
}

func (o Options) system() storage.System {
	return storage.BenchSystem(o.Scale, int64(workload.ReferenceFootprintPages)*4096)
}

// Interval is one measured checkpoint interval of a run.
type Interval struct {
	Start, End   float64 // work-time span
	W            float64 // model work span
	C1           float64 // local checkpoint latency (s)
	DeltaLatency float64 // dl
	DeltaSize    float64 // ds (bytes)
	C2, C3       float64 // level-2/3 completion latencies
	DirtyPages   int
}

// Report is the outcome of a run: the per-interval trace, the no-failure
// execution accounting, and the Eq. (1) NET² evaluation.
type Report struct {
	Benchmark        string
	Policy           Policy
	BaseTime         float64 // virtual seconds of pure execution
	WallTime         float64 // plus checkpoint halts and bookkeeping
	OverheadPct      float64 // (WallTime-BaseTime)/BaseTime × 100
	CompressionRatio float64 // Σ ds / Σ raw (lower is better)
	NET2             float64 // normalized expected turnaround time
	Intervals        []Interval

	lambda [3]float64
	run    *core.RunResult
}

func buildReport(res *core.RunResult, lambda [3]float64) (*Report, error) {
	n, err := res.NET2(lambda)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Benchmark:        res.Benchmark,
		Policy:           Policy(res.Policy),
		BaseTime:         res.BaseTime,
		WallTime:         res.WallTime,
		OverheadPct:      100 * res.OverheadFrac(),
		CompressionRatio: res.MeanRatio(),
		NET2:             n,
		lambda:           lambda,
		run:              res,
	}
	for _, iv := range res.Intervals {
		rep.Intervals = append(rep.Intervals, Interval{
			Start: iv.Start, End: iv.End, W: iv.W,
			C1: iv.C1, DeltaLatency: iv.DL, DeltaSize: iv.DS,
			C2: iv.C2, C3: iv.C3, DirtyPages: iv.DirtyPages,
		})
	}
	return rep, nil
}

// RunBenchmark executes one of the six SPEC-like benchmarks (bzip2, sjeng,
// libquantum, milc, lbm, sphinx3) under the given options.
func RunBenchmark(name string, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalize()
	prog, err := workload.ByName(name, opts.Seed)
	if err != nil {
		return nil, err
	}
	fresh := func() (workload.Program, error) { return workload.ByName(name, opts.Seed) }
	return runProgram(prog, fresh, opts)
}

// runProgram executes prog; fresh builds independent instances for the
// profiling pre-run SIC requires.
func runProgram(prog workload.Program, fresh func() (workload.Program, error), opts Options) (*Report, error) {
	lambda := opts.lambda()
	sys := opts.system()
	cfg := core.Config{
		Policy:        core.PolicyKind(opts.Policy),
		System:        sys,
		Lambda:        lambda,
		Seed:          opts.Seed,
		Compressor:    core.CompressorKind(opts.Compressor),
		FixedInterval: opts.FixedInterval,
		FullEvery:     opts.FullCheckpointEvery,
	}
	if opts.FixedInterval <= 0 {
		switch opts.Policy {
		case SIC:
			profProg, err := fresh()
			if err != nil {
				return nil, err
			}
			prof, err := core.Profile(profProg, core.Config{
				System: sys, Lambda: lambda, Compressor: cfg.Compressor,
			}, prog.BaseTime()/20)
			if err != nil {
				return nil, fmt.Errorf("aic: profiling: %w", err)
			}
			w, err := core.OptimalSICInterval(prof, 1, prog.BaseTime())
			if err != nil {
				return nil, err
			}
			cfg.FixedInterval = w
		case Moody:
			mp := core.MoodyFullParams(sys, int64(prog.FootprintPages()*4096), lambda)
			w, err := core.OptimalMoodyInterval(mp, 1, 10*prog.BaseTime())
			if err != nil {
				return nil, err
			}
			cfg.FixedInterval = w
		}
	}
	res, err := core.NewRuntime(prog, cfg).Run()
	if err != nil {
		return nil, err
	}
	return buildReport(res, lambda)
}

// Validate cross-checks a report's Eq. (1) NET² against the independent
// event-driven Monte Carlo simulator on the same interval trace, returning
// both estimates.
func (r *Report) Validate(trials int, seed uint64) (analytic, empirical float64, err error) {
	if r.run == nil || len(r.run.Intervals) == 0 {
		return 0, 0, fmt.Errorf("aic: report has no interval trace")
	}
	ivs := sim.FromRecords(r.run.Intervals)
	analytic, err = sim.AnalyticNET2(ivs, r.lambda)
	if err != nil {
		return 0, 0, err
	}
	mc, err := sim.MonteCarloNET2(ivs, r.lambda, trials, seed)
	if err != nil {
		return 0, 0, err
	}
	return analytic, mc.NET2, nil
}

// Experiments lists the reproducible tables and figures by name.
func Experiments() []string {
	return []string{"fig2", "fig5", "fig6", "fig7", "fig11", "fig12", "table1", "table3", "ablations", "extensions", "studies"}
}

// RunExperiment reproduces one table or figure of the paper and returns its
// rendered report. Names follow Experiments().
func RunExperiment(name string, seed uint64) (string, error) {
	if seed == 0 {
		seed = 42
	}
	switch name {
	case "fig2":
		s, err := exp.Fig2(seed)
		if err != nil {
			return "", err
		}
		return exp.RenderFig2(s), nil
	case "fig5":
		rows, err := exp.Fig5(nil)
		if err != nil {
			return "", err
		}
		return exp.RenderScaling("Fig. 5 — NET² of pF3D (MPI scaling) vs system size", rows), nil
	case "fig6":
		rows, err := exp.Fig6(nil)
		if err != nil {
			return "", err
		}
		return exp.RenderScaling("Fig. 6 — NET² of RMS vs system size", rows), nil
	case "fig7":
		rows, err := exp.Fig7(nil, nil)
		if err != nil {
			return "", err
		}
		return exp.RenderFig7(rows), nil
	case "fig11":
		rows, err := exp.Fig11(seed)
		if err != nil {
			return "", err
		}
		return exp.RenderFig11(rows), nil
	case "fig12":
		rows, err := exp.Fig12(seed, nil)
		if err != nil {
			return "", err
		}
		return exp.RenderFig12(rows), nil
	case "table1":
		rows, err := exp.Table1Rows(0, seed)
		if err != nil {
			return "", err
		}
		return exp.RenderTable1(rows), nil
	case "table3":
		rows, err := exp.Table3(seed)
		if err != nil {
			return "", err
		}
		return exp.RenderTable3(rows), nil
	case "studies":
		acc, err := exp.PredictorAccuracy(seed)
		if err != nil {
			return "", err
		}
		lam, err := exp.LambdaSensitivity(seed, "milc", nil)
		if err != nil {
			return "", err
		}
		return exp.RenderAccuracy(acc, lam), nil
	case "extensions":
		sharing, err := exp.SharingEmpirical(seed, nil)
		if err != nil {
			return "", err
		}
		mpiRows, err := exp.MPIScaling(seed, nil)
		if err != nil {
			return "", err
		}
		weibull, err := exp.WeibullSensitivity(seed, nil, 0)
		if err != nil {
			return "", err
		}
		return exp.RenderExtensions(sharing, mpiRows, weibull), nil
	case "ablations":
		comp, err := exp.AblationCompressor(seed)
		if err != nil {
			return "", err
		}
		pred, err := exp.AblationPredictor(seed)
		if err != nil {
			return "", err
		}
		samp, err := exp.AblationSampler(seed)
		if err != nil {
			return "", err
		}
		bs, err := exp.AblationBlockSize(seed, nil)
		if err != nil {
			return "", err
		}
		return exp.RenderAblations(comp, pred, samp) + exp.RenderBlockSize(bs), nil
	}
	return "", fmt.Errorf("aic: unknown experiment %q (want one of %v)", name, Experiments())
}

// Benchmarks lists the built-in SPEC-like benchmark names.
func Benchmarks() []string { return exp.BenchmarkNames() }

// Improvement returns the relative NET² reduction of this report versus a
// baseline (positive = this report is better).
func (r *Report) Improvement(baseline *Report) float64 {
	if baseline == nil || baseline.NET2 == 0 || math.IsNaN(baseline.NET2) {
		return 0
	}
	return (baseline.NET2 - r.NET2) / baseline.NET2
}
