package aic

import (
	"math"
	"strings"
	"testing"
)

func TestPolicyAndCompressorNames(t *testing.T) {
	if AIC.String() != "AIC" || SIC.String() != "SIC" || Moody.String() != "Moody" {
		t.Fatal("policy names")
	}
	if Xdelta3PA.String() != "xdelta3-pa" || Xdelta3.String() != "xdelta3" || XORRLE.String() != "xor-rle" {
		t.Fatal("compressor names")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 6 || bs[0] != "bzip2" {
		t.Fatalf("benchmarks: %v", bs)
	}
}

func TestRunBenchmarkAIC(t *testing.T) {
	rep, err := RunBenchmark("sphinx3", Options{Policy: AIC})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "sphinx3" || rep.Policy != AIC {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.NET2 < 1 {
		t.Fatalf("NET² %v below 1", rep.NET2)
	}
	if rep.WallTime <= rep.BaseTime {
		t.Fatal("wall time must exceed base time")
	}
	if len(rep.Intervals) == 0 {
		t.Fatal("no intervals")
	}
	if rep.CompressionRatio <= 0 || rep.CompressionRatio > 1.05 {
		t.Fatalf("ratio %v", rep.CompressionRatio)
	}
	if rep.OverheadPct < 0 || rep.OverheadPct > 8 {
		t.Fatalf("overhead %v%%", rep.OverheadPct)
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("gcc", Options{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPolicyComparison(t *testing.T) {
	aic, err := RunBenchmark("milc", Options{Policy: AIC})
	if err != nil {
		t.Fatal(err)
	}
	moody, err := RunBenchmark("milc", Options{Policy: Moody})
	if err != nil {
		t.Fatal(err)
	}
	if aic.NET2 >= moody.NET2 {
		t.Fatalf("AIC %v must beat Moody %v", aic.NET2, moody.NET2)
	}
	if imp := aic.Improvement(moody); imp <= 0 || imp >= 1 {
		t.Fatalf("improvement %v", imp)
	}
	if aic.Improvement(nil) != 0 {
		t.Fatal("nil baseline improvement must be 0")
	}
}

func TestReportValidate(t *testing.T) {
	rep, err := RunBenchmark("sphinx3", Options{Policy: SIC})
	if err != nil {
		t.Fatal(err)
	}
	analytic, empirical, err := rep.Validate(8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-empirical)/analytic > 0.05 {
		t.Fatalf("analytic %v vs empirical %v diverge", analytic, empirical)
	}
	empty := &Report{}
	if _, _, err := empty.Validate(10, 1); err == nil {
		t.Fatal("empty report validated")
	}
}

func TestRunProgramCustomSpec(t *testing.T) {
	spec := ProgramSpec{
		Name:     "custom-stream",
		BaseTime: 120,
		Pages:    512,
		Phases: []Phase{
			{Duration: 10, Rate: 30, RegionLo: 0, RegionHi: 512, Pattern: Sweep, Mode: Scramble, Fraction: 0.5},
			{Duration: 5, Rate: 5, RegionLo: 0, RegionHi: 64, Pattern: Hotspot, Mode: Tick},
		},
	}
	rep, err := RunProgram(spec, Options{Policy: AIC, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "custom-stream" || len(rep.Intervals) == 0 {
		t.Fatalf("custom run: %+v", rep)
	}
	// SIC path profiles via a fresh spec instance.
	repSIC, err := RunProgram(spec, Options{Policy: SIC, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if repSIC.NET2 < 1 {
		t.Fatalf("SIC NET² %v", repSIC.NET2)
	}
}

func TestRunProgramInvalidSpec(t *testing.T) {
	if _, err := RunProgram(ProgramSpec{Name: "bad"}, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	bad := ProgramSpec{Name: "bad", BaseTime: 10, Pages: 4, Phases: []Phase{
		{Duration: 1, Rate: 1, RegionLo: 2, RegionHi: 99},
	}}
	if _, err := RunProgram(bad, Options{}); err == nil {
		t.Fatal("out-of-range region accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.FailureRate != 1e-3 || o.Seed != 42 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestRunExperimentNamesAndErrors(t *testing.T) {
	if len(Experiments()) != 11 {
		t.Fatalf("experiments: %v", Experiments())
	}
	if _, err := RunExperiment("fig99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFig5(t *testing.T) {
	out, err := RunExperiment("fig5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Moody") || !strings.Contains(out, "L2L3") {
		t.Fatalf("fig5 output:\n%s", out)
	}
}

func TestRunExperimentFig2(t *testing.T) {
	out, err := RunExperiment("fig2", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sjeng") || !strings.Contains(out, "swing") {
		t.Fatalf("fig2 output:\n%s", out)
	}
}

func TestDeterministicReports(t *testing.T) {
	a, err := RunBenchmark("bzip2", Options{Policy: AIC, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark("bzip2", Options{Policy: AIC, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NET2 != b.NET2 || a.WallTime != b.WallTime || len(a.Intervals) != len(b.Intervals) {
		t.Fatal("same seed must reproduce identical reports")
	}
}

func TestScaleAffectsNET2(t *testing.T) {
	small, err := RunBenchmark("milc", Options{Policy: SIC, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunBenchmark("milc", Options{Policy: SIC, Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.NET2 <= small.NET2 {
		t.Fatalf("NET² must grow with scale: %v vs %v", small.NET2, big.NET2)
	}
}

func TestFullCheckpointEveryOption(t *testing.T) {
	rep, err := RunBenchmark("sphinx3", Options{Policy: SIC, FixedInterval: 20, FullCheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Periodic fulls are dramatically larger than deltas: the max interval
	// delta size must be near the footprint while the median stays small.
	var max, min float64 = 0, math.Inf(1)
	for _, iv := range rep.Intervals {
		if iv.DeltaSize > max {
			max = iv.DeltaSize
		}
		if iv.DeltaSize < min {
			min = iv.DeltaSize
		}
	}
	if max < 4*min {
		t.Fatalf("no periodic fulls visible: min %v max %v", min, max)
	}
}
